"""Rule engine for the repro determinism linter.

The linter parses every file into an :mod:`ast` tree and runs each
registered :class:`Rule` over it.  Rules are pure functions from a tree
to :class:`Violation` objects; the engine owns file discovery, parent
annotation, per-line ``# repro: noqa`` suppression, and report
formatting.  No third-party dependencies -- this must run anywhere the
simulation runs.

Suppressions: a violation is ignored when its source line carries
``# repro: noqa`` (all rules) or ``# repro: noqa D003`` /
``# repro: noqa: D003, D005`` (listed rules only).
"""

from __future__ import annotations

import ast
import os
import re
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa(?::?\s*(?P<codes>[A-Z]\d{3}(?:\s*,\s*[A-Z]\d{3})*))?")


@dataclass(frozen=True)
class Violation:
    """One rule hit: where, which rule, and what to do about it."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


@dataclass
class FileContext:
    """Everything a rule may need to know about the file under analysis."""

    path: str               # path as given on the command line
    relpath: str            # posix path relative to the package root
    source: str
    lines: List[str] = field(default_factory=list)

    def in_dir(self, *parts: str) -> bool:
        """True when the file lives under any of the given package dirs."""
        return any(self.relpath.startswith(p + "/") for p in parts)

    def is_file(self, *names: str) -> bool:
        return os.path.basename(self.relpath) in names


class Rule:
    """Base class: subclasses set the id/title/rationale and implement check."""

    rule_id = "D000"
    title = ""
    rationale = ""

    def check(self, tree: ast.Module, ctx: FileContext) -> Iterable[Violation]:
        raise NotImplementedError

    def violation(self, ctx: FileContext, node: ast.AST, message: str) -> Violation:
        return Violation(rule=self.rule_id, path=ctx.path,
                         line=getattr(node, "lineno", 1),
                         col=getattr(node, "col_offset", 0) + 1,
                         message=message)


def annotate_parents(tree: ast.Module) -> None:
    """Attach a ``.parent`` pointer to every node (rules walk upward)."""
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            child.parent = node  # type: ignore[attr-defined]


def suppressed_codes(line: str) -> Optional[List[str]]:
    """Parse a noqa comment: None = no comment, [] = all rules, else codes."""
    m = _NOQA_RE.search(line)
    if m is None:
        return None
    codes = m.group("codes")
    if not codes:
        return []
    return [c.strip() for c in codes.split(",")]


def _is_suppressed(violation: Violation, lines: Sequence[str]) -> bool:
    if not 1 <= violation.line <= len(lines):
        return False
    codes = suppressed_codes(lines[violation.line - 1])
    if codes is None:
        return False
    return not codes or violation.rule in codes


def collect_files(paths: Sequence[str]) -> List[str]:
    """Expand files/directories into a sorted, de-duplicated .py file list."""
    out = []
    for path in paths:
        if os.path.isdir(path):
            for root, dirs, files in os.walk(path):
                dirs.sort()       # deterministic walk order (rule D003 applies
                for name in sorted(files):  # to the linter itself)
                    if name.endswith(".py"):
                        out.append(os.path.join(root, name))
        elif path.endswith(".py"):
            out.append(path)
    seen: Dict[str, bool] = {}
    unique = []
    for path in out:
        if path not in seen:
            seen[path] = True
            unique.append(path)
    unique.sort()
    return unique


def _relpath_in_package(path: str) -> str:
    """Path relative to the ``repro`` package root (or the file name)."""
    norm = path.replace(os.sep, "/")
    marker = "repro/"
    idx = norm.rfind("/" + marker)
    if idx >= 0:
        return norm[idx + 1 + len(marker):]
    if norm.startswith(marker):
        return norm[len(marker):]
    return os.path.basename(norm)


def lint_source(source: str, path: str, rules: Sequence[Rule],
                relpath: Optional[str] = None) -> List[Violation]:
    """Lint one file's source text; returns surviving (unsuppressed) hits."""
    ctx = FileContext(path=path,
                      relpath=relpath if relpath is not None
                      else _relpath_in_package(path),
                      source=source, lines=source.splitlines())
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as err:
        return [Violation(rule="E000", path=path, line=err.lineno or 1,
                          col=(err.offset or 0) + 1,
                          message=f"syntax error: {err.msg}")]
    annotate_parents(tree)
    found: List[Violation] = []
    for rule in rules:
        found.extend(rule.check(tree, ctx))
    found.sort(key=lambda v: (v.line, v.col, v.rule))
    return [v for v in found if not _is_suppressed(v, ctx.lines)]


@dataclass
class LintReport:
    """Violations plus the file census, with text renderers for the CLI."""

    violations: List[Violation]
    files_checked: int

    @property
    def ok(self) -> bool:
        return not self.violations

    def format_lines(self) -> List[str]:
        lines = [v.format() for v in self.violations]
        lines.append(f"{len(self.violations)} violation(s) in "
                     f"{self.files_checked} file(s) checked")
        return lines

    def stats_lines(self) -> List[str]:
        """Violations grouped by rule and by file (``--stats`` output)."""
        by_rule: Dict[str, int] = {}
        by_file: Dict[str, int] = {}
        for v in self.violations:
            by_rule[v.rule] = by_rule.get(v.rule, 0) + 1
            by_file[v.path] = by_file.get(v.path, 0) + 1
        lines = ["== violations by rule =="]
        for rule in sorted(by_rule):
            lines.append(f"  {rule}: {by_rule[rule]}")
        if not by_rule:
            lines.append("  (none)")
        lines.append("== violations by file ==")
        for path in sorted(by_file):
            lines.append(f"  {path}: {by_file[path]}")
        if not by_file:
            lines.append("  (none)")
        lines.append(f"total: {len(self.violations)} violation(s) in "
                     f"{self.files_checked} file(s)")
        return lines


def lint_paths(paths: Sequence[str],
               rules: Optional[Sequence[Rule]] = None) -> LintReport:
    """Lint files/directories with the default (or given) rule set."""
    if rules is None:
        from repro.analysis.rules import default_rules
        rules = default_rules()
    violations: List[Violation] = []
    files = collect_files(paths)
    for path in files:
        with open(path, "r", encoding="utf-8") as fh:
            source = fh.read()
        violations.extend(lint_source(source, path, rules))
    return LintReport(violations=violations, files_checked=len(files))
