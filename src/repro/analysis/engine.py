"""Rule engine for the repro determinism linter.

The linter parses every file into an :mod:`ast` tree and runs each
registered :class:`Rule` over it.  Rules are pure functions from a tree
to :class:`Violation` objects; the engine owns file discovery, parent
annotation, per-line ``# repro: noqa`` suppression, and report
formatting.  No third-party dependencies -- this must run anywhere the
simulation runs.

Suppressions: a violation is ignored when its source line carries
``# repro: noqa`` (all rules) or ``# repro: noqa D003`` /
``# repro: noqa: D003, D005`` (listed rules only).
"""

from __future__ import annotations

import ast
import io
import json
import os
import re
import tokenize
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa(?::?\s*(?P<codes>[A-Z]\d{3}(?:\s*,\s*[A-Z]\d{3})*))?")


@dataclass(frozen=True)
class Violation:
    """One rule hit: where, which rule, and what to do about it."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


@dataclass
class FileContext:
    """Everything a rule may need to know about the file under analysis."""

    path: str               # path as given on the command line
    relpath: str            # posix path relative to the package root
    source: str
    lines: List[str] = field(default_factory=list)

    def in_dir(self, *parts: str) -> bool:
        """True when the file lives under any of the given package dirs."""
        return any(self.relpath.startswith(p + "/") for p in parts)

    def is_file(self, *names: str) -> bool:
        return os.path.basename(self.relpath) in names


class Rule:
    """Base class: subclasses set the id/title/rationale and implement check."""

    rule_id = "D000"
    title = ""
    rationale = ""

    def check(self, tree: ast.Module, ctx: FileContext) -> Iterable[Violation]:
        raise NotImplementedError

    def violation(self, ctx: FileContext, node: ast.AST, message: str) -> Violation:
        return Violation(rule=self.rule_id, path=ctx.path,
                         line=getattr(node, "lineno", 1),
                         col=getattr(node, "col_offset", 0) + 1,
                         message=message)


def annotate_parents(tree: ast.Module) -> None:
    """Attach a ``.parent`` pointer to every node (rules walk upward)."""
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            child.parent = node  # type: ignore[attr-defined]


def suppressed_codes(line: str) -> Optional[List[str]]:
    """Parse a noqa comment: None = no comment, [] = all rules, else codes."""
    m = _NOQA_RE.search(line)
    if m is None:
        return None
    codes = m.group("codes")
    if not codes:
        return []
    return [c.strip() for c in codes.split(",")]


def _comment_map(source: str, lines: Sequence[str]) -> Dict[int, Tuple[int, str]]:
    """Map line number -> (column, comment text) for real ``#`` comments.

    Tokenizing (rather than regex-scanning raw lines) keeps noqa
    detection from matching ``# repro: noqa`` examples that live inside
    string literals and docstrings -- those are prose, not suppressions.
    Falls back to raw lines when tokenization fails (the caller already
    parsed the source, so this is belt and braces).
    """
    out: Dict[int, Tuple[int, str]] = {}
    try:
        for tok in tokenize.generate_tokens(io.StringIO(source).readline):
            if tok.type == tokenize.COMMENT:
                out[tok.start[0]] = (tok.start[1], tok.string)
    except (tokenize.TokenError, IndentationError, SyntaxError):
        for i, line in enumerate(lines, start=1):
            idx = line.find("#")
            if idx >= 0:
                out[i] = (idx, line[idx:])
    return out


def _is_suppressed(violation: Violation,
                   comments: Dict[int, Tuple[int, str]]) -> bool:
    entry = comments.get(violation.line)
    if entry is None:
        return False
    codes = suppressed_codes(entry[1])
    if codes is None:
        return False
    return not codes or violation.rule in codes


def collect_files(paths: Sequence[str]) -> List[str]:
    """Expand files/directories into a sorted, de-duplicated .py file list."""
    out = []
    for path in paths:
        if os.path.isdir(path):
            for root, dirs, files in os.walk(path):
                dirs.sort()       # deterministic walk order (rule D003 applies
                for name in sorted(files):  # to the linter itself)
                    if name.endswith(".py"):
                        out.append(os.path.join(root, name))
        elif path.endswith(".py"):
            out.append(path)
    seen: Dict[str, bool] = {}
    unique = []
    for path in out:
        if path not in seen:
            seen[path] = True
            unique.append(path)
    unique.sort()
    return unique


def _relpath_in_package(path: str) -> str:
    """Path relative to the ``repro`` package root (or the file name)."""
    norm = path.replace(os.sep, "/")
    marker = "repro/"
    idx = norm.rfind("/" + marker)
    if idx >= 0:
        return norm[idx + 1 + len(marker):]
    if norm.startswith(marker):
        return norm[len(marker):]
    return os.path.basename(norm)


def lint_source(source: str, path: str, rules: Sequence[Rule],
                relpath: Optional[str] = None) -> List[Violation]:
    """Lint one file's source text; returns surviving (unsuppressed) hits."""
    ctx = FileContext(path=path,
                      relpath=relpath if relpath is not None
                      else _relpath_in_package(path),
                      source=source, lines=source.splitlines())
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as err:
        return [Violation(rule="E000", path=path, line=err.lineno or 1,
                          col=(err.offset or 0) + 1,
                          message=f"syntax error: {err.msg}")]
    annotate_parents(tree)
    found: List[Violation] = []
    for rule in rules:
        found.extend(rule.check(tree, ctx))
    comments = _comment_map(source, ctx.lines)
    survivors = [v for v in found if not _is_suppressed(v, comments)]
    if any(rule.rule_id == "W001" for rule in rules):
        survivors.extend(_stale_suppressions(ctx, found, comments))
    survivors.sort(key=lambda v: (v.line, v.col, v.rule))
    return survivors


def _stale_suppressions(ctx: FileContext, found: Sequence[Violation],
                        comments: Dict[int, Tuple[int, str]]) -> List[Violation]:
    """W001: a ``# repro: noqa`` comment that masks no violation is stale.

    Stale suppressions are dead weight that silently disables future
    rules on the line, so they are flagged rather than honored -- which
    also means W001 itself cannot be noqa'd away: the fix is deleting
    (or narrowing) the comment.
    """
    out = []
    for line, (col, text) in sorted(comments.items()):
        codes = suppressed_codes(text)
        if codes is None:
            continue
        masked = [v for v in found if v.line == line
                  and (not codes or v.rule in codes)]
        if masked:
            continue
        what = "blanket `# repro: noqa`" if not codes else \
            f"`# repro: noqa {', '.join(codes)}`"
        out.append(Violation(
            rule="W001", path=ctx.path, line=line, col=col + 1,
            message=f"stale suppression: {what} masks no violation on "
                    "this line; delete it (or name the rule it is for)"))
    return out


@dataclass
class LintReport:
    """Violations plus the file census, with text renderers for the CLI."""

    violations: List[Violation]
    files_checked: int
    #: call-site census from the protocol checker (None when the rule
    #: set carried no P-rules); see repro.analysis.protocol.SiteCoverage.
    protocol: Optional[object] = None

    @property
    def ok(self) -> bool:
        return not self.violations

    def format_lines(self) -> List[str]:
        lines = [v.format() for v in self.violations]
        lines.append(f"{len(self.violations)} violation(s) in "
                     f"{self.files_checked} file(s) checked")
        return lines

    def github_lines(self) -> List[str]:
        """GitHub Actions workflow commands: one ``::error`` per hit.

        The runner turns these into PR line annotations; the matching
        problem-matcher (``.github/repro-lint-problem-matcher.json``)
        covers the plain-text format for tools that capture stdout.
        """
        return [f"::error file={v.path},line={v.line},col={v.col},"
                f"title={v.rule}::{v.message}" for v in self.violations]

    def to_json(self) -> str:
        doc: Dict[str, object] = {
            "ok": self.ok,
            "files_checked": self.files_checked,
            "violations": [{"rule": v.rule, "path": v.path, "line": v.line,
                            "col": v.col, "message": v.message}
                           for v in self.violations],
        }
        if self.protocol is not None:
            doc["protocol_coverage"] = self.protocol.to_dict()
        return json.dumps(doc, indent=2, sort_keys=True)

    def stats_lines(self) -> List[str]:
        """Violations grouped by rule and by file (``--stats`` output)."""
        by_rule: Dict[str, int] = {}
        by_file: Dict[str, int] = {}
        for v in self.violations:
            by_rule[v.rule] = by_rule.get(v.rule, 0) + 1
            by_file[v.path] = by_file.get(v.path, 0) + 1
        lines = ["== violations by rule =="]
        for rule in sorted(by_rule):
            lines.append(f"  {rule}: {by_rule[rule]}")
        if not by_rule:
            lines.append("  (none)")
        lines.append("== violations by file ==")
        for path in sorted(by_file):
            lines.append(f"  {path}: {by_file[path]}")
        if not by_file:
            lines.append("  (none)")
        if self.protocol is not None:
            lines.extend(self.protocol.stats_lines())
        lines.append(f"total: {len(self.violations)} violation(s) in "
                     f"{self.files_checked} file(s)")
        return lines


def lint_paths(paths: Sequence[str],
               rules: Optional[Sequence[Rule]] = None) -> LintReport:
    """Lint files/directories with the default (or given) rule set."""
    if rules is None:
        from repro.analysis.rules import default_rules
        rules = default_rules()
    violations: List[Violation] = []
    files = collect_files(paths)
    for path in files:
        with open(path, "r", encoding="utf-8") as fh:
            source = fh.read()
        violations.extend(lint_source(source, path, rules))
    coverage = None
    for rule in rules:
        coverage = getattr(rule, "coverage", None)
        if coverage is not None:
            break
    return LintReport(violations=violations, files_checked=len(files),
                      protocol=coverage)
