"""Happens-before analysis over a run's ``hb.*`` trace events.

When a run is started with ``Params.hb_trace`` the kernel carries an
``hb_log`` sink and the instrumented layers emit four event kinds into
the trace under category ``hb``:

- ``bind``  (ep, actor): an OCS runtime bound ``ip:port`` for process
  ``ip/pid`` -- the mapping that attributes wire endpoints to actors;
- ``send``  (msg, src, dst): the network accepted datagram ``msg`` from
  endpoint ``src``;
- ``recv``  (msg, dst): the datagram was handed to ``dst``'s handler;
- ``write`` (actor, var, ver): an actor mutated a piece of shared
  cluster state (a name-space path, a database row, a binding-cache
  entry), tagged with a version so replicated copies of *the same*
  update stay distinguishable from conflicting ones.

This module replays those events in trace order and maintains one
vector clock per actor (a ``(host, pid)`` pair rendered ``ip/pid``):
program order advances an actor's own component, a ``recv`` joins the
clock snapshot captured at the matching ``send``, and ``timer`` edges
(``timer_set``/``timer_fire`` with a shared ``tid``) are supported for
traces from backends whose timers cross actors.  Two writes to the same
variable *race* when they come from different actors, carry different
versions, and neither happens-before the other -- the unordered
dual-write that split-brain masters and stale primaries produce, and
that replicated fan-out of one update (same version everywhere) does
not.

The per-variable write chains double as the cross-backend conformance
oracle ROADMAP item 5 needs: two runs of different transports conform
when :func:`write_order_digests` agree, i.e. every piece of shared
state saw the same updates in the same order.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Optional, TextIO, Tuple

#: stop reporting races on one variable after this many pairs (a true
#: split-brain touches many rows; the first few pin the bug).
MAX_RACES_PER_VAR = 4
MAX_RACES_TOTAL = 64

VectorClock = Dict[str, int]


def _leq(a: VectorClock, b: VectorClock) -> bool:
    """a happens-before-or-equals b."""
    for actor, count in a.items():
        if count > b.get(actor, 0):
            return False
    return True


@dataclass(frozen=True)
class HbWrite:
    """One recorded mutation of shared state."""

    actor: str
    time: float
    var: str
    ver: Optional[str]
    clock: Tuple[Tuple[str, int], ...]   # frozen vector snapshot

    def vclock(self) -> VectorClock:
        return dict(self.clock)

    def describe(self) -> str:
        return f"{self.var}={self.ver!r} by {self.actor} at t={self.time:.3f}"


@dataclass(frozen=True)
class HbRace:
    """Two unordered conflicting writes to the same variable."""

    var: str
    first: HbWrite
    second: HbWrite

    def describe(self) -> str:
        return (f"unordered conflicting writes to {self.var}: "
                f"[{self.first.ver!r} by {self.first.actor} "
                f"t={self.first.time:.3f}] vs [{self.second.ver!r} by "
                f"{self.second.actor} t={self.second.time:.3f}]")


@dataclass
class HbReport:
    """What one run's happens-before graph says about its shared state."""

    events: int = 0
    actors: int = 0
    messages: int = 0
    writes: Dict[str, List[HbWrite]] = field(default_factory=dict)
    races: List[HbRace] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.races

    def write_count(self) -> int:
        return sum(len(ws) for ws in self.writes.values())

    def format_lines(self) -> List[str]:
        lines = [f"hb: {self.events} event(s), {self.actors} actor(s), "
                 f"{self.messages} message edge(s), {self.write_count()} "
                 f"write(s) to {len(self.writes)} variable(s)"]
        for race in self.races:
            lines.append(f"RACE {race.describe()}")
        lines.append(f"{len(self.races)} race(s)")
        return lines

    def to_dict(self) -> Dict[str, Any]:
        return {
            "ok": self.ok,
            "events": self.events,
            "actors": self.actors,
            "messages": self.messages,
            "writes": self.write_count(),
            "variables": len(self.writes),
            "races": [{"var": r.var,
                       "first": {"actor": r.first.actor,
                                 "time": round(r.first.time, 6),
                                 "ver": r.first.ver},
                       "second": {"actor": r.second.actor,
                                  "time": round(r.second.time, 6),
                                  "ver": r.second.ver}}
                      for r in self.races],
        }


class HbAnalyzer:
    """Replays hb events in order, building clocks and catching races."""

    def __init__(self) -> None:
        self._clocks: Dict[str, VectorClock] = {}
        self._ep_actor: Dict[str, str] = {}
        self._sends: Dict[Any, Tuple[Tuple[str, int], ...]] = {}
        self._timers: Dict[Any, Tuple[Tuple[str, int], ...]] = {}
        self.report = HbReport()

    # -- clock plumbing -------------------------------------------------

    def _actor_for(self, endpoint: str) -> str:
        """The process behind ``ip:port`` (endpoints outlive processes;
        the latest bind wins, matching port reuse across incarnations).
        Unmapped endpoints stay their own actor -- sound, because
        under-merging can only *add* order edges that actually exist."""
        return self._ep_actor.get(endpoint, endpoint)

    def _tick(self, actor: str) -> VectorClock:
        clock = self._clocks.get(actor)
        if clock is None:
            clock = {}
            self._clocks[actor] = clock
        clock[actor] = clock.get(actor, 0) + 1
        return clock

    @staticmethod
    def _join(clock: VectorClock, snapshot: Tuple[Tuple[str, int], ...]) -> None:
        for actor, count in snapshot:
            if count > clock.get(actor, 0):
                clock[actor] = count

    @staticmethod
    def _freeze(clock: VectorClock) -> Tuple[Tuple[str, int], ...]:
        return tuple(sorted(clock.items()))

    # -- event intake ---------------------------------------------------

    def feed(self, event: Mapping[str, Any]) -> None:
        """Consume one hb event dict (kind + fields, trace order)."""
        kind = event["event"]
        self.report.events += 1
        if kind == "bind":
            self._ep_actor[event["ep"]] = event["actor"]
        elif kind == "send":
            actor = self._actor_for(event["src"])
            clock = self._tick(actor)
            self._sends[event["msg"]] = self._freeze(clock)
            self.report.messages += 1
        elif kind == "recv":
            actor = self._actor_for(event["dst"])
            clock = self._tick(actor)
            snapshot = self._sends.get(event["msg"])
            if snapshot is not None:
                self._join(clock, snapshot)
        elif kind == "timer_set":
            actor = event["actor"]
            self._timers[event["tid"]] = self._freeze(self._tick(actor))
        elif kind == "timer_fire":
            actor = event["actor"]
            clock = self._tick(actor)
            snapshot = self._timers.pop(event["tid"], None)
            if snapshot is not None:
                self._join(clock, snapshot)
        elif kind == "write":
            self._on_write(event)

    def _on_write(self, event: Mapping[str, Any]) -> None:
        actor = event["actor"]
        var = event["var"]
        ver = event.get("ver")
        ver = None if ver is None else str(ver)
        clock = self._tick(actor)
        write = HbWrite(actor=actor, time=float(event.get("time", 0.0)),
                        var=var, ver=ver, clock=self._freeze(clock))
        chain = self.report.writes.setdefault(var, [])
        self._check_conflicts(chain, write)
        chain.append(write)

    def _check_conflicts(self, chain: List[HbWrite], new: HbWrite) -> None:
        if len(self.report.races) >= MAX_RACES_TOTAL:
            return
        found = sum(1 for r in self.report.races if r.var == new.var)
        new_clock = new.vclock()
        for prior in chain:
            if found >= MAX_RACES_PER_VAR:
                return
            if prior.actor == new.actor:
                continue  # program order
            if prior.ver is not None and prior.ver == new.ver:
                continue  # the same update, replicated: benign fan-out
            # The prior write is ordered before `new` iff its snapshot is
            # contained in new's clock.  (The reverse cannot hold: events
            # feed in trace order, so `new` never precedes `prior`.)
            if _leq(prior.vclock(), new_clock):
                continue
            self.report.races.append(HbRace(var=new.var, first=prior,
                                            second=new))
            found += 1
            if len(self.report.races) >= MAX_RACES_TOTAL:
                return

    def finish(self) -> HbReport:
        self.report.actors = len(self._clocks)
        return self.report


# ----------------------------------------------------------------------
# entry points
# ----------------------------------------------------------------------

def hb_events_from_trace(trace_events: Iterable[Any]) -> List[Dict[str, Any]]:
    """Project a TraceLog's ``hb`` category into plain event dicts."""
    out = []
    for ev in trace_events:
        if ev.category != "hb":
            continue
        rec = {"time": ev.time, "event": ev.event}
        rec.update(ev.fields)
        out.append(rec)
    return out


def analyze_events(events: Iterable[Mapping[str, Any]]) -> HbReport:
    """Run the detector over hb event dicts (trace order)."""
    analyzer = HbAnalyzer()
    for event in events:
        analyzer.feed(event)
    return analyzer.finish()


def analyze_trace(trace_events: Iterable[Any]) -> HbReport:
    """Run the detector over a TraceLog's events (any categories)."""
    return analyze_events(hb_events_from_trace(trace_events))


# ----------------------------------------------------------------------
# the cross-backend conformance oracle (ROADMAP item 5)
# ----------------------------------------------------------------------

def write_order_digests(report: HbReport) -> Dict[str, str]:
    """Per-variable sha256 over the ordered update versions.

    Actor names and timestamps deliberately stay out of the digest: a
    real-socket backend will use different pids and wall-clock-free
    virtual times, but a conforming run must apply *the same updates in
    the same order* to every piece of shared state.  Consecutive
    duplicate versions collapse (replicated fan-out applies one update
    to N copies).
    """
    out = {}
    for var, writes in sorted(report.writes.items()):
        chain: List[str] = []
        for w in writes:
            ver = "?" if w.ver is None else w.ver
            if not chain or chain[-1] != ver:
                chain.append(ver)
        digest = hashlib.sha256("\n".join(chain).encode()).hexdigest()
        out[var] = digest
    return out


def conformance_diff(a: HbReport, b: HbReport) -> List[str]:
    """Human-readable differences between two runs' write orders."""
    da, db = write_order_digests(a), write_order_digests(b)
    out = []
    for var in sorted(set(da) | set(db)):
        if var not in da:
            out.append(f"{var}: only written in run B")
        elif var not in db:
            out.append(f"{var}: only written in run A")
        elif da[var] != db[var]:
            out.append(f"{var}: write order diverges "
                       f"({da[var][:12]} != {db[var][:12]})")
    return out


# ----------------------------------------------------------------------
# JSONL persistence (the `repro analyze-trace --trace FILE` format)
# ----------------------------------------------------------------------

def dump_jsonl(events: Iterable[Mapping[str, Any]], fh: TextIO) -> int:
    """Write hb event dicts one-per-line; returns the count."""
    n = 0
    for event in events:
        fh.write(json.dumps(event, sort_keys=True) + "\n")
        n += 1
    return n


def load_jsonl(fh: TextIO) -> List[Dict[str, Any]]:
    out = []
    for line in fh:
        line = line.strip()
        if line:
            out.append(json.loads(line))
    return out
