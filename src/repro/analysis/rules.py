"""The repo-specific rule set (D001..D010).

Every rule guards the one invariant the reproduction rests on: two runs
with the same seed produce byte-identical traces (see
:mod:`repro.sim.kernel`).  Rules are syntactic and conservative -- when
a hit is a considered exception, suppress it at the site with
``# repro: noqa Dxxx`` and a comment saying why.
"""

from __future__ import annotations

import ast
import os
from typing import Dict, Iterable, List, Set

from repro.analysis.engine import FileContext, Rule, Violation

#: Consumers whose result does not depend on iteration order; iterating
#: an unordered collection directly inside them is harmless.
ORDER_INSENSITIVE_CALLS = {
    "sorted", "any", "all", "sum", "min", "max", "len", "set", "frozenset",
}

#: Methods on sets that yield sets (so set-typedness propagates).
_SET_METHODS = {"difference", "union", "intersection", "symmetric_difference",
                "copy"}

#: Calls that create a kernel Future/Task whose result must not be
#: silently discarded (rule D008).
FUTURE_CREATORS = {"create_task", "create_future", "ensure_future",
                   "spawn_task", "invoke", "gather"}


class RandomModuleRule(Rule):
    rule_id = "D001"
    title = "no `random` module outside sim/rand.py"
    rationale = ("Global `random` state is invisible to the seed; all "
                 "randomness must flow through SeededRandom so one seed "
                 "fully determines a run.")

    def check(self, tree: ast.Module, ctx: FileContext) -> Iterable[Violation]:
        if ctx.relpath == "sim/rand.py":
            return []
        out = []
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random" or alias.name.startswith("random."):
                        out.append(self.violation(
                            ctx, node,
                            "import of `random` outside sim/rand.py; draw "
                            "from a SeededRandom stream instead"))
            elif isinstance(node, ast.ImportFrom):
                if (node.module or "") == "random":
                    out.append(self.violation(
                        ctx, node,
                        "import from `random` outside sim/rand.py; draw "
                        "from a SeededRandom stream instead"))
        return out


class WallClockRule(Rule):
    rule_id = "D002"
    title = "no wall-clock time"
    rationale = ("The simulation runs on virtual time (Kernel.now); any "
                 "wall-clock read makes traces differ between runs and "
                 "hosts.")

    _CLOCK_ATTRS = {"now", "utcnow", "today"}

    def check(self, tree: ast.Module, ctx: FileContext) -> Iterable[Violation]:
        out = []
        datetime_names: Set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "time" or alias.name.startswith("time."):
                        out.append(self.violation(
                            ctx, node,
                            "import of `time` (wall clock); use Kernel.now "
                            "/ kernel.sleep on virtual time"))
                    elif alias.name == "datetime":
                        datetime_names.add(alias.asname or "datetime")
            elif isinstance(node, ast.ImportFrom):
                mod = node.module or ""
                if mod == "time":
                    out.append(self.violation(
                        ctx, node,
                        "import from `time` (wall clock); use Kernel.now "
                        "/ kernel.sleep on virtual time"))
                elif mod == "datetime":
                    for alias in node.names:
                        if alias.name in ("datetime", "date"):
                            datetime_names.add(alias.asname or alias.name)
        for node in ast.walk(tree):
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in self._CLOCK_ATTRS):
                continue
            base = node.func.value
            hit = (isinstance(base, ast.Name) and base.id in datetime_names) \
                or (isinstance(base, ast.Attribute)
                    and isinstance(base.value, ast.Name)
                    and base.value.id in datetime_names)
            if hit:
                out.append(self.violation(
                    ctx, node,
                    f"wall-clock call `.{node.func.attr}()`; simulated "
                    "code must use Kernel.now"))
        return out


class UnorderedIterationRule(Rule):
    rule_id = "D003"
    title = "no iteration over unordered collections"
    rationale = ("Iterating a set (or bare dict.keys()) makes event order "
                 "depend on PYTHONHASHSEED; wrap scheduling-visible "
                 "iteration in sorted(...).")

    def check(self, tree: ast.Module, ctx: FileContext) -> Iterable[Violation]:
        out: List[Violation] = []
        self._check_scope(tree, ctx, out, set())
        return out

    # -- scope walking -------------------------------------------------

    def _check_scope(self, scope: ast.AST, ctx: FileContext,
                     out: List[Violation], inherited: Set[str]) -> None:
        """Walk one function/module body, tracking set-typed local names."""
        set_names = set(inherited)
        body = getattr(scope, "body", [])
        for stmt in body:
            self._check_stmt(stmt, ctx, out, set_names)

    def _check_stmt(self, stmt: ast.AST, ctx: FileContext,
                    out: List[Violation], set_names: Set[str]) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            self._check_scope(stmt, ctx, out, set_names)
            return
        # Track `name = <set expr>` bindings.
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 \
                and isinstance(stmt.targets[0], ast.Name):
            name = stmt.targets[0].id
            if self._is_set_expr(stmt.value, set_names):
                set_names.add(name)
            else:
                set_names.discard(name)
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._check_iter(stmt.iter, stmt, ctx, out, set_names)
        for node in ast.iter_child_nodes(stmt):
            if isinstance(node, (ast.stmt, ast.ExceptHandler)):
                self._check_stmt(node, ctx, out, set_names)
            else:
                self._check_expr(node, ctx, out, set_names)

    def _check_expr(self, node: ast.AST, ctx: FileContext,
                    out: List[Violation], set_names: Set[str]) -> None:
        for sub in ast.walk(node):
            if isinstance(sub, (ast.ListComp, ast.GeneratorExp, ast.DictComp)):
                if self._comprehension_exempt(sub):
                    continue
                for gen in sub.generators:
                    if self._is_unordered(gen.iter, set_names):
                        out.append(self._hit(ctx, gen.iter))

    def _check_iter(self, iter_expr: ast.AST, stmt: ast.AST, ctx: FileContext,
                    out: List[Violation], set_names: Set[str]) -> None:
        if self._is_unordered(iter_expr, set_names):
            out.append(self._hit(ctx, stmt))

    def _hit(self, ctx: FileContext, node: ast.AST) -> Violation:
        return self.violation(
            ctx, node,
            "iteration over an unordered collection (set / bare .keys()); "
            "wrap in sorted(...) for a deterministic order")

    # -- classification ------------------------------------------------

    def _is_set_expr(self, node: ast.AST, set_names: Set[str]) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Name):
            return node.id in set_names
        if isinstance(node, ast.Call):
            if isinstance(node.func, ast.Name) and \
                    node.func.id in ("set", "frozenset"):
                return True
            if isinstance(node.func, ast.Attribute) and \
                    node.func.attr in _SET_METHODS:
                return self._is_set_expr(node.func.value, set_names)
        if isinstance(node, ast.BinOp) and isinstance(
                node.op, (ast.Sub, ast.BitOr, ast.BitAnd, ast.BitXor)):
            return (self._is_set_expr(node.left, set_names)
                    or self._is_set_expr(node.right, set_names))
        return False

    def _is_unordered(self, node: ast.AST, set_names: Set[str]) -> bool:
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute) \
                and node.func.attr == "keys" and not node.args:
            return True
        return self._is_set_expr(node, set_names)

    def _comprehension_exempt(self, comp: ast.AST) -> bool:
        """A comprehension feeding an order-insensitive consumer is fine."""
        parent = getattr(comp, "parent", None)
        if isinstance(parent, ast.Call) and isinstance(parent.func, ast.Name) \
                and parent.func.id in ORDER_INSENSITIVE_CALLS \
                and comp in parent.args:
            return True
        return False


class HashSeedRule(Rule):
    rule_id = "D004"
    title = "no hash()/id() in ordering or seeds"
    rationale = ("`hash()` of a str varies with PYTHONHASHSEED and `id()` "
                 "with allocation order; deriving seeds or sort keys from "
                 "them breaks cross-run reproducibility.  Use "
                 "repro.sim.rand.stable_seed.")

    def check(self, tree: ast.Module, ctx: FileContext) -> Iterable[Violation]:
        out = []
        for node in ast.walk(tree):
            if isinstance(node, ast.Call) and isinstance(node.func, ast.Name) \
                    and node.func.id in ("hash", "id"):
                out.append(self.violation(
                    ctx, node,
                    f"`{node.func.id}()` is PYTHONHASHSEED/allocation "
                    "sensitive; derive keys/seeds with "
                    "repro.sim.rand.stable_seed"))
        return out


class ExceptionSwallowRule(Rule):
    rule_id = "D005"
    title = "no blanket except that can swallow cancellation"
    rationale = ("`except:` / `except BaseException` absorbs "
                 "CancelledError and KernelStopped, wedging kernel "
                 "teardown; catch Exception, or re-raise.")

    def check(self, tree: ast.Module, ctx: FileContext) -> Iterable[Violation]:
        out = []
        for node in ast.walk(tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if not self._is_blanket(node.type):
                continue
            if self._reraises(node):
                continue
            what = "bare `except:`" if node.type is None \
                else "`except BaseException`"
            out.append(self.violation(
                ctx, node,
                f"{what} can swallow CancelledError/KernelStopped; catch "
                "Exception or re-raise"))
        return out

    def _is_blanket(self, type_node) -> bool:
        if type_node is None:
            return True
        if isinstance(type_node, ast.Name) and type_node.id == "BaseException":
            return True
        if isinstance(type_node, ast.Tuple):
            return any(isinstance(e, ast.Name) and e.id == "BaseException"
                       for e in type_node.elts)
        return False

    def _reraises(self, handler: ast.ExceptHandler) -> bool:
        return any(isinstance(n, ast.Raise) and n.exc is None
                   for n in ast.walk(handler))


class LayeringRule(Rule):
    rule_id = "D006"
    title = "services/settop must not import repro.net directly"
    rationale = ("The application layer talks through the OCS object "
                 "layer; direct net imports re-create the implicit "
                 "transport coupling the paper's OCS exists to remove.")

    def check(self, tree: ast.Module, ctx: FileContext) -> Iterable[Violation]:
        if not ctx.in_dir("services", "settop"):
            return []
        out = []
        for node in ast.walk(tree):
            names = []
            if isinstance(node, ast.Import):
                names = [a.name for a in node.names]
            elif isinstance(node, ast.ImportFrom):
                names = [node.module or ""]
            for name in names:
                if name == "repro.net" or name.startswith("repro.net."):
                    out.append(self.violation(
                        ctx, node,
                        f"direct import of `{name}` from the application "
                        "layer; import via repro.ocs"))
        return out


class PrintRule(Rule):
    rule_id = "D007"
    title = "no print() outside cli.py"
    rationale = ("Simulated components report through sim.trace so tests "
                 "and benchmarks see structured, diffable events; stdout "
                 "is for the CLI only.")

    def check(self, tree: ast.Module, ctx: FileContext) -> Iterable[Violation]:
        if ctx.is_file("cli.py") or "examples" in ctx.relpath.split("/"):
            return []
        out = []
        for node in ast.walk(tree):
            if isinstance(node, ast.Call) and isinstance(node.func, ast.Name) \
                    and node.func.id == "print":
                out.append(self.violation(
                    ctx, node,
                    "print() outside cli.py; emit through sim.trace "
                    "(or return data for the CLI to render)"))
        return out


class FutureLeakRule(Rule):
    rule_id = "D008"
    title = "futures must be awaited, kept, or detached"
    rationale = ("A discarded Future/Task hides failures and leaks "
                 "never-stepped coroutines at teardown; await it, keep a "
                 "handle, or mark it fire-and-forget with .detach().")

    def check(self, tree: ast.Module, ctx: FileContext) -> Iterable[Violation]:
        out = []
        for node in ast.walk(tree):
            if not isinstance(node, ast.Expr):
                continue
            call = node.value
            if not isinstance(call, ast.Call):
                continue
            name = None
            if isinstance(call.func, ast.Attribute):
                name = call.func.attr
            elif isinstance(call.func, ast.Name):
                name = call.func.id
            if name in FUTURE_CREATORS:
                out.append(self.violation(
                    ctx, node,
                    f"result of `{name}(...)` is discarded; await it, "
                    "keep the handle, or chain .detach()"))
        return out


class RawFaultSurfaceRule(Rule):
    rule_id = "D009"
    title = "fault injection goes through repro.chaos"
    rationale = ("Raw Network fault calls (partition, set_loss, set_delay, "
                 "set_duplicate, set_gray, heal/clear) leave no chaos.inject "
                 "trace event, so the run's digest no longer pins the fault "
                 "schedule and a failing run cannot be replayed or "
                 "minimized.  Inject a Fault through "
                 "repro.chaos.FaultInjector instead.")

    #: raw surface method -> how many positional args the *Network*
    #: variant takes.  The count disambiguates `Network.partition(a, b)`
    #: from the 1-arg `str.partition(sep)`.
    _SURFACE = {"partition": 2, "heal_partitions": 0, "set_loss": (2, 3),
                "set_delay": 2, "set_duplicate": (2, 3), "set_gray": 2,
                "set_reorder": 4, "set_corrupt": 3,
                "clear_faults": 0, "clear_loss": 0}

    def check(self, tree: ast.Module, ctx: FileContext) -> Iterable[Violation]:
        # The chaos injector owns the surface; repro.net implements it.
        # Test files may poke it directly (that is how the parity tests
        # drive partitions) -- they lint with a bare-basename relpath.
        if ctx.in_dir("chaos", "net") or \
                os.path.basename(ctx.relpath).startswith("test_"):
            return []
        out = []
        for node in ast.walk(tree):
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)):
                continue
            want = self._SURFACE.get(node.func.attr)
            if want is None:
                continue
            n_args = len(node.args) + len(node.keywords)
            if n_args != want and not (isinstance(want, tuple)
                                       and n_args in want):
                continue   # e.g. str.partition(sep): wrong arity
            out.append(self.violation(
                ctx, node,
                f"direct `.{node.func.attr}(...)` on the raw fault "
                "surface; inject a Fault through repro.chaos so the "
                "fault is trace-logged and replayable"))
        return out


class DeadlineRule(Rule):
    rule_id = "D010"
    title = "OCS invocations must carry a time budget"
    rationale = ("An `invoke(...)` without an explicit `timeout=` or "
                 "`deadline=` falls back to the default call timeout and "
                 "cannot participate in deadline propagation -- under "
                 "overload the server may burn capacity on an answer no "
                 "caller still wants.  Pass the remaining budget down, or "
                 "suppress a considered exception with "
                 "`# repro: noqa: D010`.")

    def check(self, tree: ast.Module, ctx: FileContext) -> Iterable[Violation]:
        if os.path.basename(ctx.relpath).startswith("test_"):
            return []
        out = []
        for node in ast.walk(tree):
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "invoke"):
                continue
            if len(node.args) < 2:
                continue   # not the OCS invoke(ref, method, args) shape
            kw = {k.arg for k in node.keywords}
            if "timeout" in kw or "deadline" in kw or None in kw:
                continue   # budgeted (None = **kwargs: assume it is)
            out.append(self.violation(
                ctx, node,
                "`invoke(...)` without `timeout=` or `deadline=`; pass "
                "the remaining budget so deadline propagation works"))
        return out


class StaleSuppressionRule(Rule):
    """W001 -- enforced by the engine, declared here for the catalog.

    The engine (``lint_source``) flags every ``# repro: noqa`` comment
    that masks no violation on its line whenever this rule is in the
    active set; the check needs the full pre-suppression violation list,
    which individual rules never see, so :meth:`check` itself is empty.
    """

    rule_id = "W001"
    title = "no stale `# repro: noqa` suppressions"
    rationale = ("A noqa that suppresses nothing is dead weight that "
                 "silently disables future rules on its line; delete it "
                 "or name the rule it is for.")

    def check(self, tree: ast.Module, ctx: FileContext) -> Iterable[Violation]:
        return []  # engine-driven; see repro.analysis.engine._stale_suppressions


def default_rules() -> List[Rule]:
    """The rule set `repro lint` runs: determinism (D), protocol
    conformance (P), and suppression hygiene (W), in id order."""
    from repro.analysis.protocol import protocol_rules
    return [RandomModuleRule(), WallClockRule(), UnorderedIterationRule(),
            HashSeedRule(), ExceptionSwallowRule(), LayeringRule(),
            PrintRule(), FutureLeakRule(), RawFaultSurfaceRule(),
            DeadlineRule()] + protocol_rules() + [StaleSuppressionRule()]


def rules_by_id() -> Dict[str, Rule]:
    return {r.rule_id: r for r in default_rules()}
