"""Runtime determinism check: same seed, twice, byte-identical traces.

The static rules in :mod:`repro.analysis.rules` catch nondeterminism at
the source level; this module catches what slips through by actually
exercising the promise in :mod:`repro.sim.kernel`'s docstring.  A
reference scenario (boot, viewer traffic, an MDS kill, a server crash
and reboot) is run twice from the same seed and the structured traces
are diffed line by line.  Any drift is a determinism bug.
"""

from __future__ import annotations

import difflib
from typing import List


def format_trace_line(event) -> str:
    """Render one TraceEvent canonically (fields in sorted key order)."""
    fields = " ".join(f"{k}={event.fields[k]!r}" for k in sorted(event.fields))
    return f"{event.time:.6f} {event.category}.{event.event} {fields}"


def reference_scenario_trace(seed: int, settops: int = 2,
                             duration: float = 120.0) -> List[str]:
    """Run the reference failover scenario once; return its trace lines.

    The scenario crosses every layer the linter polices: boot (broadcast
    + name service election), OCS traffic (viewer sessions), failure
    handling (an MDS kill mid-stream), and recovery (server crash and
    reboot) -- so a nondeterministic iteration or stray wall-clock read
    almost anywhere shows up as trace drift.
    """
    from repro.cluster.builder import build_full_cluster, fresh_run_state
    from repro.workloads.sessions import run_viewers

    # Byte-identity needs the process-global allocators (pids, message
    # ids, ports) restarted, or the second run's traces shift.
    fresh_run_state()
    cluster = build_full_cluster(n_servers=3, seed=seed)
    cluster.settle()
    kernels = [cluster.add_settop_kernel(1 + (i % len(cluster.neighborhoods)))
               for i in range(settops)]
    cluster.boot_settops(kernels)
    cluster.kernel.call_later(duration * 0.25,
                              cluster.kill_service, 0, "mds")
    cluster.kernel.call_later(duration * 0.5, cluster.crash_server, 1)
    cluster.kernel.call_later(duration * 0.75, cluster.reboot_server, 1)
    run_viewers(cluster, kernels, duration, seed=seed)
    return [format_trace_line(ev) for ev in cluster.trace.events]


def double_run_diff(seed: int, settops: int = 2,
                    duration: float = 120.0) -> List[str]:
    """Run the reference scenario twice with one seed; return the diff.

    An empty list means the runs were byte-identical, which is the
    repo's core invariant.  Non-empty output is a unified diff of the
    first divergences, ready to print.
    """
    first = reference_scenario_trace(seed, settops=settops, duration=duration)
    second = reference_scenario_trace(seed, settops=settops, duration=duration)
    if first == second:
        return []
    return list(difflib.unified_diff(first, second, fromfile="run-1",
                                     tofile="run-2", lineterm="", n=1))
