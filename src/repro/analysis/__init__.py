"""Static analysis for the reproduction's determinism invariants.

``repro lint`` front-end:  an AST linter with repo-specific rules
(D001..D008, see :mod:`repro.analysis.rules`) plus a runtime
double-run trace diff (:mod:`repro.analysis.determinism`).  The rules
exist to keep one promise enforceable forever: two runs with the same
seed produce byte-identical traces.
"""

from repro.analysis.determinism import double_run_diff, reference_scenario_trace
from repro.analysis.engine import (
    FileContext,
    LintReport,
    Rule,
    Violation,
    collect_files,
    lint_paths,
    lint_source,
)
from repro.analysis.rules import default_rules, rules_by_id

__all__ = [
    "FileContext",
    "LintReport",
    "Rule",
    "Violation",
    "collect_files",
    "default_rules",
    "double_run_diff",
    "lint_paths",
    "lint_source",
    "reference_scenario_trace",
    "rules_by_id",
]
