"""Static analysis for the reproduction's determinism invariants.

``repro lint`` front-end: an AST linter with repo-specific rules --
determinism/layering (D001..D010, :mod:`repro.analysis.rules`),
protocol conformance against the registered IDL
(P001..P005, :mod:`repro.analysis.protocol`), and suppression hygiene
(W001) -- plus two runtime checkers: a double-run trace diff
(:mod:`repro.analysis.determinism`) and a vector-clock happens-before
race detector over instrumented traces (:mod:`repro.analysis.hb`,
``repro analyze-trace``).  Together they keep two promises enforceable
forever: two runs with the same seed produce byte-identical traces, and
every RPC call site agrees with the interface it is calling.
"""

from repro.analysis.determinism import double_run_diff, reference_scenario_trace
from repro.analysis.engine import (
    FileContext,
    LintReport,
    Rule,
    Violation,
    collect_files,
    lint_paths,
    lint_source,
)
from repro.analysis.hb import (
    HbRace,
    HbReport,
    HbWrite,
    analyze_events,
    analyze_trace,
    conformance_diff,
    hb_events_from_trace,
    write_order_digests,
)
from repro.analysis.protocol import (
    ProtocolModel,
    SiteCoverage,
    default_model,
    extract_protocol,
    protocol_rules,
    scan_sites,
)
from repro.analysis.rules import default_rules, rules_by_id

__all__ = [
    "FileContext",
    "HbRace",
    "HbReport",
    "HbWrite",
    "LintReport",
    "ProtocolModel",
    "Rule",
    "SiteCoverage",
    "Violation",
    "analyze_events",
    "analyze_trace",
    "collect_files",
    "conformance_diff",
    "default_model",
    "default_rules",
    "double_run_diff",
    "extract_protocol",
    "hb_events_from_trace",
    "lint_paths",
    "lint_source",
    "protocol_rules",
    "reference_scenario_trace",
    "rules_by_id",
    "scan_sites",
    "write_order_digests",
]
