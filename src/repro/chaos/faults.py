"""The fault vocabulary: every disturbance the chaos engine can inject.

Each fault is a small, serializable record -- *what* happens and *when*,
never *how* (the how lives in :mod:`repro.chaos.injector`).  Keeping
faults as data is what makes the rest of the engine possible: schedules
can be generated from a seeded stream, written to JSON, replayed
byte-identically, and shrunk fault-by-fault by the minimizer.

The vocabulary covers the paper's failure model (section 4.7 "failures
we handle": process death, node death, and the audits that clean up
after both) plus the plant-level faults the deployed system saw but the
paper only alludes to: message loss on the cable plant, delay,
duplication, and gray failures (a replica that answers, slowly).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Tuple

#: fault kind -> (required arg names, optional arg names).
#: ``target`` args name a host as ``server:<i>`` or ``settop:<i>``.
FAULT_KINDS: Dict[str, Tuple[Tuple[str, ...], Tuple[str, ...]]] = {
    # -- process and node failures (paper section 4.7) ------------------
    "kill_service": (("server", "service"), ()),
    "kill_ssc": (("server",), ()),
    "stop_service": (("server", "service"), ()),   # operator stop: no restart
    "crash_server": (("server",), ()),
    "reboot_server": (("server",), ()),
    "crash_settop": (("settop",), ()),
    # -- network faults --------------------------------------------------
    "partition": (("servers_a", "servers_b"), ()),
    "heal": ((), ()),
    "loss": (("target", "probability"), ()),
    "delay": (("target", "extra"), ()),
    "duplicate": (("target", "probability"), ()),
    # reorder: a hit message is held back up to ``max_skew`` seconds on
    # the target's in-link, so later sends overtake it.
    "reorder": (("target", "probability"), ("max_skew",)),
    # corrupt: a hit message is delivered payload-damaged; the receiver's
    # envelope checksum is expected to catch and drop it.
    "corrupt": (("target", "probability"), ()),
    "gray": (("server", "reply_lag"), ()),
    "clear_link_faults": ((), ()),
    # -- overload faults (PR 4) ------------------------------------------
    # load_surge: burst clients hammer ``service`` with ``calls`` short-
    # deadline invocations spread over ``duration`` seconds (flash crowd).
    "load_surge": (("service", "calls"), ("duration", "settop")),
    # slow_consumer: the named service's servants acquire ``lag`` seconds
    # of dequeue delay, so queues build and deadlines expire in-queue.
    "slow_consumer": (("server", "service", "lag"), ()),
    # -- storage faults (PR 8) -------------------------------------------
    # disk_lose_unsynced: switch the server's disk to write-barrier mode,
    # so writes not followed by sync() evaporate at the next crash.
    "disk_lose_unsynced": (("server",), ()),
    # disk_torn_write: arm a one-shot torn write -- the next buffered key
    # survives the next crash only as a CorruptBlob (partial sector).
    "disk_torn_write": (("server",), ()),
    # disk_corrupt: bit-rot the named durable key in place, immediately.
    "disk_corrupt": (("server", "key"), ()),
    # disk_wedge: every disk op raises DiskWedged until healed (or until
    # ``duration`` seconds elapse, when given).
    "disk_wedge": (("server",), ("duration",)),
}


class FaultError(ValueError):
    """A fault record is malformed (unknown kind or bad arguments)."""


@dataclass(frozen=True)
class Fault:
    """One injected disturbance at one simulated instant.

    ``at`` is seconds after the schedule starts (scenario-relative, like
    :meth:`repro.cluster.scenario.Scenario.at` offsets).
    """

    at: float
    kind: str
    args: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        validate_fault(self.kind, self.args, at=self.at)

    def to_dict(self) -> Dict[str, Any]:
        return {"at": self.at, "kind": self.kind, "args": dict(self.args)}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Fault":
        try:
            return cls(at=float(data["at"]), kind=str(data["kind"]),
                       args=dict(data.get("args", {})))
        except KeyError as err:
            raise FaultError(f"fault record missing field {err}") from err

    def describe(self) -> str:
        """One-line rendering for trace lines and schedule listings."""
        args = " ".join(f"{k}={self.args[k]}" for k in sorted(self.args))
        return f"{self.kind}({args})" if args else self.kind

    def moved_to(self, new_at: float) -> "Fault":
        return Fault(at=new_at, kind=self.kind, args=dict(self.args))


def validate_fault(kind: str, args: Mapping[str, Any], at: float = 0.0) -> None:
    if at < 0:
        raise FaultError(f"fault time must be >= 0, got {at}")
    spec = FAULT_KINDS.get(kind)
    if spec is None:
        known = ", ".join(sorted(FAULT_KINDS))
        raise FaultError(f"unknown fault kind {kind!r} (known: {known})")
    required, optional = spec
    missing = [name for name in required if name not in args]
    if missing:
        raise FaultError(f"{kind}: missing argument(s) {missing}")
    extra = [name for name in args if name not in required + optional]
    if extra:
        raise FaultError(f"{kind}: unknown argument(s) {extra}")
    for name in ("probability",):
        if name in args and not 0.0 <= float(args[name]) <= 1.0:
            raise FaultError(f"{kind}: {name} must be in [0, 1]")
    for name in ("extra", "reply_lag", "lag", "duration"):
        if name in args and float(args[name]) < 0:
            raise FaultError(f"{kind}: {name} must be >= 0")
    for name in ("max_skew",):
        if name in args and float(args[name]) <= 0:
            raise FaultError(f"{kind}: {name} must be > 0")
    for name in ("calls",):
        if name in args and int(args[name]) <= 0:
            raise FaultError(f"{kind}: {name} must be > 0")
    for name in ("target",):
        if name in args:
            parse_target(str(args[name]))


def parse_target(target: str) -> Tuple[str, int]:
    """``server:0`` / ``settop:2`` -> ("server", 0) / ("settop", 2)."""
    kind, sep, index = target.partition(":")
    if not sep or kind not in ("server", "settop") or not index.isdigit():
        raise FaultError(
            f"bad target {target!r}: expected server:<i> or settop:<i>")
    return kind, int(index)


def sort_key(fault: Fault) -> Tuple[float, str, str]:
    """Deterministic total order for schedules (time, then rendering)."""
    return (fault.at, fault.kind, fault.describe())


def faults_to_dicts(faults: List[Fault]) -> List[Dict[str, Any]]:
    return [f.to_dict() for f in faults]
