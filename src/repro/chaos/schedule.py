"""Fault schedules: ordered fault lists, generated or loaded, replayable.

A :class:`FaultSchedule` is the unit the whole engine deals in: the
generator samples one from a seeded stream, the runner replays one
deterministically, the minimizer shrinks one, and JSON files round-trip
one (``repro chaos --schedule FILE``).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Mapping, Optional

from repro.chaos.faults import Fault, FaultError, sort_key
from repro.sim.rand import SeededRandom

#: services the generator may kill (every SSC-restartable process; the
#: SSC itself has its own fault kind since killing it kills its children).
KILLABLE_SERVICES = ["mds", "rds", "mms", "cmgr", "vod", "shopping", "game",
                     "ras", "settopmgr", "db", "fileservice", "boot", "kbs",
                     "csc", "ns"]

#: services a generated load_surge / slow_consumer may target: the
#: admission-gated ones with a known cheap probe operation (PR 4).
SURGEABLE_SERVICES = ["vod", "shopping", "mms", "mds"]

#: durable keys a generated disk_corrupt may bit-rot: the replication
#: state the PR 8 recovery paths must survive losing (PR 8).  The
#: change logs persist per-entry (schema 2), so the faults target the
#: first entry key -- garbling it invalidates the whole on-disk chain,
#: the worst case the truncate-to-valid-prefix recovery must absorb.
DISK_FAULT_KEYS = ["dbrepl/changelog.e/1", "ns/changelog.e/1", "ns/state"]

SCHEDULE_FORMAT_VERSION = 1


@dataclass(frozen=True)
class FaultSchedule:
    """An immutable, time-sorted fault script plus its horizon.

    ``horizon`` is when active disturbance ends: the engine heals all
    partitions and link faults there, then lets the cluster quiesce
    before the final invariant checks.
    """

    faults: tuple = field(default_factory=tuple)
    horizon: float = 240.0

    def __post_init__(self) -> None:
        ordered = tuple(sorted(self.faults, key=sort_key))
        object.__setattr__(self, "faults", ordered)
        for fault in ordered:
            if fault.at >= self.horizon:
                raise FaultError(
                    f"fault at t={fault.at} is past the horizon "
                    f"{self.horizon} (faults must precede the heal-all)")

    def __len__(self) -> int:
        return len(self.faults)

    def __iter__(self) -> Iterator[Fault]:
        return iter(self.faults)

    # -- shrinking operations (repro.chaos.minimize) --------------------

    def without(self, index: int) -> "FaultSchedule":
        """A copy with fault ``index`` dropped."""
        kept = self.faults[:index] + self.faults[index + 1:]
        return FaultSchedule(faults=kept, horizon=self.horizon)

    def advanced(self, index: int, new_at: float) -> "FaultSchedule":
        """A copy with fault ``index`` moved to ``new_at`` (re-sorted)."""
        moved = self.faults[index].moved_to(new_at)
        rest = self.faults[:index] + self.faults[index + 1:]
        return FaultSchedule(faults=rest + (moved,), horizon=self.horizon)

    # -- serialization ---------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {"version": SCHEDULE_FORMAT_VERSION,
                "horizon": self.horizon,
                "faults": [f.to_dict() for f in self.faults]}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultSchedule":
        version = data.get("version", SCHEDULE_FORMAT_VERSION)
        if version != SCHEDULE_FORMAT_VERSION:
            raise FaultError(f"unsupported schedule version {version}")
        faults = tuple(Fault.from_dict(f) for f in data.get("faults", []))
        return cls(faults=faults, horizon=float(data.get("horizon", 240.0)))

    def dumps(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    @classmethod
    def loads(cls, text: str) -> "FaultSchedule":
        return cls.from_dict(json.loads(text))

    def save(self, path) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.dumps() + "\n")

    @classmethod
    def load(cls, path) -> "FaultSchedule":
        with open(path, "r", encoding="utf-8") as fh:
            return cls.loads(fh.read())

    def describe(self) -> List[str]:
        return [f"t={f.at:8.2f}  {f.describe()}" for f in self.faults]


def generate_schedule(rng: SeededRandom, n_faults: int = 8,
                      horizon: float = 240.0, n_servers: int = 3,
                      n_settops: int = 4,
                      services: Optional[List[str]] = None) -> FaultSchedule:
    """Sample a fault schedule from a seeded substream.

    The mix favors process kills (the paper's common case) over node
    crashes and network faults.  Two generation invariants keep random
    schedules *survivable*, so a monitor violation means a real bug
    rather than an impossible situation:

    - at most one server is crash-downed at a time, and every crash is
      paired with a reboot before the horizon (a majority of name-service
      replicas must eventually exist for the cluster to recover);
    - at most one partition is open at a time, and every partition is
      paired with a heal.
    """
    if n_faults < 1:
        raise FaultError("n_faults must be >= 1")
    if horizon < 60.0:
        raise FaultError("horizon must be >= 60 s (boot + one audit cycle)")
    services = services or KILLABLE_SERVICES
    faults: List[Fault] = []
    crash_used = False
    partition_used = False
    lo, hi = 10.0, horizon - 15.0

    while len(faults) < n_faults:
        at = rng.uniform(lo, hi)
        roll = rng.random()
        if roll < 0.36:
            faults.append(Fault(at, "kill_service", {
                "server": rng.randint(0, n_servers - 1),
                "service": rng.choice(services)}))
        elif roll < 0.44:
            faults.append(Fault(at, "kill_ssc",
                                {"server": rng.randint(0, n_servers - 1)}))
        elif roll < 0.54:
            if crash_used:
                continue
            crash_used = True
            server = rng.randint(0, n_servers - 1)
            back = min(at + rng.uniform(20.0, 50.0), hi)
            faults.append(Fault(at, "crash_server", {"server": server}))
            faults.append(Fault(back, "reboot_server", {"server": server}))
        elif roll < 0.64:
            if partition_used:
                continue
            partition_used = True
            isolated = rng.randint(0, n_servers - 1)
            others = [i for i in range(n_servers) if i != isolated]
            heal_at = min(at + rng.uniform(15.0, 40.0), hi)
            faults.append(Fault(at, "partition", {"servers_a": [isolated],
                                                  "servers_b": others}))
            faults.append(Fault(heal_at, "heal", {}))
        elif roll < 0.69:
            faults.append(Fault(at, "loss", {
                "target": _pick_target(rng, n_servers, n_settops),
                "probability": round(rng.uniform(0.05, 0.25), 3)}))
        elif roll < 0.73:
            faults.append(Fault(at, "delay", {
                "target": _pick_target(rng, n_servers, n_settops),
                "extra": round(rng.uniform(0.2, 1.0), 3)}))
        elif roll < 0.77:
            faults.append(Fault(at, "duplicate", {
                "target": _pick_target(rng, n_servers, n_settops),
                "probability": round(rng.uniform(0.1, 0.5), 3)}))
        # -- hostile-delivery faults (PR 9) -----------------------------
        elif roll < 0.805:
            faults.append(Fault(at, "reorder", {
                "target": _pick_target(rng, n_servers, n_settops),
                "probability": round(rng.uniform(0.1, 0.5), 3),
                "max_skew": round(rng.uniform(0.02, 0.2), 3)}))
        elif roll < 0.83:
            faults.append(Fault(at, "corrupt", {
                "target": _pick_target(rng, n_servers, n_settops),
                "probability": round(rng.uniform(0.05, 0.3), 3)}))
        elif roll < 0.855:
            faults.append(Fault(at, "gray", {
                "server": rng.randint(0, n_servers - 1),
                "reply_lag": round(rng.uniform(0.3, 1.5), 3)}))
        elif roll < 0.88:
            # Flash crowd against an overload-aware service (PR 4).
            faults.append(Fault(at, "load_surge", {
                "service": rng.choice(SURGEABLE_SERVICES),
                "calls": rng.randint(50, 300),
                "duration": round(rng.uniform(5.0, 20.0), 1)}))
        elif roll < 0.905:
            faults.append(Fault(at, "slow_consumer", {
                "server": rng.randint(0, n_servers - 1),
                "service": rng.choice(SURGEABLE_SERVICES),
                "lag": round(rng.uniform(0.2, 2.0), 3)}))
        # -- storage faults (PR 8) --------------------------------------
        elif roll < 0.93:
            faults.append(Fault(at, "disk_lose_unsynced",
                                {"server": rng.randint(0, n_servers - 1)}))
        elif roll < 0.955:
            faults.append(Fault(at, "disk_torn_write",
                                {"server": rng.randint(0, n_servers - 1)}))
        elif roll < 0.98:
            faults.append(Fault(at, "disk_corrupt", {
                "server": rng.randint(0, n_servers - 1),
                "key": rng.choice(DISK_FAULT_KEYS)}))
        else:
            # Bounded wedge: the duration guarantees self-heal, so a
            # random schedule stays survivable (generation invariant).
            faults.append(Fault(at, "disk_wedge", {
                "server": rng.randint(0, n_servers - 1),
                "duration": round(rng.uniform(10.0, 30.0), 1)}))
    return FaultSchedule(faults=tuple(faults), horizon=horizon)


def _pick_target(rng: SeededRandom, n_servers: int, n_settops: int) -> str:
    if n_settops and rng.random() < 0.5:
        return f"settop:{rng.randint(0, n_settops - 1)}"
    return f"server:{rng.randint(0, n_servers - 1)}"
