"""Failing-schedule minimization: shrink a storm to its essential faults.

When a seed sweep finds a monitor violation, the raw schedule is a poor
repro: most of its faults are noise.  Because every run is deterministic
(same seed + same schedule = same digest), we can shrink mechanically --
re-run candidate schedules and keep any that still trip one of the
originally-violated monitors:

1. **drop** passes: remove one fault at a time, keeping removals that
   still fail, until no single removal does (1-minimal in faults);
2. **advance** passes: pull surviving faults earlier (halving their
   offset), which both shortens the repro and proves the failure is not
   an accident of late-run timing.

The result is written to ``benchmarks/out/`` as a schedule JSON anyone
can replay with ``repro chaos --schedule``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, List, Optional

from repro.chaos.engine import ChaosResult, run_schedule
from repro.chaos.schedule import FaultSchedule

#: shrink attempts are capped so a pathological schedule cannot make the
#: minimizer re-run the simulator without bound.
MAX_SHRINK_RUNS = 40

#: faults are never advanced earlier than this (the cluster needs a few
#: seconds of scenario time before a fault is meaningful).
EARLIEST_FAULT = 5.0


@dataclass
class MinimizeResult:
    """The shrunk schedule plus the evidence trail."""

    seed: int
    schedule: FaultSchedule          # minimal failing schedule
    result: ChaosResult              # the run proving it still fails
    original_faults: int = 0
    runs: int = 0                    # simulator re-runs spent shrinking
    trail: List[str] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "original_faults": self.original_faults,
            "minimal_faults": len(self.schedule),
            "runs": self.runs,
            "violated_monitors": self.result.violated_monitors(),
            "digest": self.result.digest,
            "trail": self.trail,
            "schedule": self.schedule.to_dict(),
            "violations": [{"monitor": v.monitor, "t": round(v.time, 3),
                            "detail": v.detail}
                           for v in self.result.violations],
        }


def minimize_schedule(schedule: FaultSchedule, seed: int,
                      failing: Optional[ChaosResult] = None,
                      run: Callable[..., ChaosResult] = run_schedule,
                      max_runs: int = MAX_SHRINK_RUNS,
                      **run_kwargs) -> MinimizeResult:
    """Shrink ``schedule`` while it keeps tripping the same monitor(s).

    ``failing`` is the original violating result (re-run if omitted).
    A candidate "still fails" when it violates at least one of the
    monitors the original run violated -- shrinking may not wander to a
    *different* failure.
    """
    state = {"runs": 0}

    def execute(candidate: FaultSchedule) -> ChaosResult:
        state["runs"] += 1
        return run(candidate, seed, **run_kwargs)

    if failing is None:
        failing = execute(schedule)
    if failing.ok:
        raise ValueError("minimize_schedule needs a failing run to shrink")
    target = set(failing.violated_monitors())
    trail: List[str] = []

    def still_fails(candidate: FaultSchedule) -> Optional[ChaosResult]:
        if state["runs"] >= max_runs:
            return None
        result = execute(candidate)
        if target & set(result.violated_monitors()):
            return result
        return None

    current, current_result = schedule, failing
    improved = True
    while improved and state["runs"] < max_runs:
        improved = False
        # Drop pass: try removing each fault, last first (late faults
        # are the likeliest noise -- the violation already happened).
        index = len(current) - 1
        while index >= 0 and state["runs"] < max_runs:
            candidate = current.without(index)
            result = still_fails(candidate)
            if result is not None:
                trail.append(
                    f"dropped {current.faults[index].describe()} "
                    f"@t={current.faults[index].at:.1f}")
                current, current_result = candidate, result
                improved = True
            index -= 1
        # Advance pass: pull each remaining fault earlier.
        for index in range(len(current)):
            if state["runs"] >= max_runs:
                break
            fault = current.faults[index]
            new_at = max(EARLIEST_FAULT, fault.at / 2.0)
            if fault.at - new_at < 1.0:
                continue
            candidate = current.advanced(index, new_at)
            result = still_fails(candidate)
            if result is not None:
                trail.append(f"advanced {fault.describe()} "
                             f"t={fault.at:.1f} -> t={new_at:.1f}")
                current, current_result = candidate, result
                improved = True
    return MinimizeResult(seed=seed, schedule=current, result=current_result,
                          original_faults=len(schedule),
                          runs=state["runs"], trail=trail)


def write_minimal(minimized: MinimizeResult, out_dir) -> Path:
    """Persist the minimal failing schedule for replay; returns the path."""
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    path = out / f"chaos_min_seed{minimized.seed}.json"
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(minimized.to_dict(), fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path
