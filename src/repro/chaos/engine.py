"""The chaos runner: one seed, one schedule, one verdict, one digest.

``run_seed`` builds the full ITV cluster, boots settops, keeps viewer
sessions running, replays a fault schedule through the
:class:`~repro.chaos.injector.FaultInjector` while the
:class:`~repro.chaos.monitors.MonitorBus` probes the invariant catalog,
heals everything at the horizon, quiesces past the paper's worst-case
fail-over bound, and runs the final checks.

Everything is driven from substreams of one seed, and the run starts
from :func:`~repro.cluster.builder.fresh_run_state`, so the returned
trace digest is a replayable fingerprint: the same seed and schedule
produce the same digest, byte for byte -- which is what lets the
minimizer trust a re-run and lets CI double-run a schedule to prove it.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.analysis.determinism import format_trace_line
from repro.chaos.injector import FaultInjector
from repro.chaos.monitors import MonitorBus, Violation
from repro.chaos.schedule import FaultSchedule, generate_schedule
from repro.cluster.builder import Cluster, build_full_cluster, fresh_run_state
from repro.cluster.scenario import Scenario
from repro.core.params import Params
from repro.metrics.delivery import collect_delivery
from repro.metrics.disks import collect_disks
from repro.metrics.overload import collect_overload
from repro.metrics.replication import collect_replication
from repro.sim.rand import SeededRandom


class ChaosError(RuntimeError):
    """The chaos run itself failed to get going (not an invariant breach)."""


@dataclass
class ChaosResult:
    """Everything one chaos run produced."""

    seed: int
    schedule: FaultSchedule
    violations: List[Violation] = field(default_factory=list)
    digest: str = ""
    trace_lines: int = 0
    availability: Dict[str, dict] = field(default_factory=dict)
    viewer_ops: int = 0
    finished_at: float = 0.0
    faults_injected: int = 0
    procs_killed: int = 0
    # PR 4: what the admission gates, deadline guards, and degraded
    # fallbacks did (see repro.metrics.overload.collect_overload).
    overload: Dict[str, dict] = field(default_factory=dict)
    degraded_ops: int = 0
    # PR 7: per-group replication state at quiesce -- replica cursors,
    # log digests, catch-up counters, and the converged verdict (see
    # repro.metrics.replication.collect_replication).
    replication: Dict[str, dict] = field(default_factory=dict)
    # PR 8: per-server disk counters at quiesce (writes, syncs, lost and
    # torn writes, corrupted keys) -- see repro.metrics.disks.
    disks: Dict[str, dict] = field(default_factory=dict)
    # PR 9: hostile-delivery accounting at quiesce (duplicated/reordered/
    # corrupted frames, checksum drops, reply-cache counters, effect-
    # ledger summary) -- see repro.metrics.delivery.
    delivery: Dict[str, dict] = field(default_factory=dict)
    # PR 6: happens-before summary (race count, write-order digests) when
    # the run was built with Params.hb_trace; None otherwise.  hb_events
    # is the raw event stream the verdict came from -- kept out of
    # to_dict() (it can be large), exposed for `repro analyze-trace`.
    hb: Optional[dict] = None
    hb_events: Optional[list] = None

    @property
    def ok(self) -> bool:
        return not self.violations

    def violated_monitors(self) -> List[str]:
        return sorted({v.monitor for v in self.violations})

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "ok": self.ok,
            "digest": self.digest,
            "trace_lines": self.trace_lines,
            "viewer_ops": self.viewer_ops,
            "finished_at": round(self.finished_at, 3),
            "violations": [{"monitor": v.monitor, "t": round(v.time, 3),
                            "detail": v.detail} for v in self.violations],
            "availability": self.availability,
            "overload": self.overload,
            "degraded_ops": self.degraded_ops,
            "replication": self.replication,
            "disks": self.disks,
            "delivery": self.delivery,
            "hb": self.hb,
            "schedule": self.schedule.to_dict(),
        }


def trace_digest(cluster: Cluster) -> str:
    """sha256 over the canonical rendering of the whole trace."""
    text = "\n".join(format_trace_line(ev) for ev in cluster.trace.events)
    return hashlib.sha256(text.encode()).hexdigest()


def run_schedule(schedule: FaultSchedule, seed: int, n_servers: int = 3,
                 settops: int = 4, params: Optional[Params] = None,
                 monitors=None) -> ChaosResult:
    """Replay ``schedule`` against a fresh seeded cluster; judge it.

    Deterministic end to end: calling this twice with the same arguments
    yields identical :attr:`ChaosResult.digest` values.  (It restarts the
    process-global allocators, so do not call it while another cluster
    is live in the same interpreter.)
    """
    from repro.workloads.sessions import ViewerSession

    fresh_run_state()
    params = params or Params()
    cluster = build_full_cluster(n_servers=n_servers, seed=seed, params=params)
    rng = SeededRandom(seed)

    kernels = [cluster.add_settop_kernel(
        cluster.neighborhoods[i % len(cluster.neighborhoods)])
        for i in range(settops)]
    if not cluster.boot_settops(kernels, timeout=300.0):
        raise ChaosError(f"seed {seed}: settops failed to boot")

    viewer_rng = rng.stream("chaos-viewers")
    sessions = [ViewerSession(cluster, stk, viewer_rng.stream(f"v{i}"))
                for i, stk in enumerate(kernels)]
    viewer_tasks = [cluster.kernel.create_task(session.run(schedule.horizon),
                                               name=f"chaos-viewer-{i}")
                    for i, session in enumerate(sessions)]

    injector = FaultInjector(cluster, rng.stream("chaos-inject"))
    bus = MonitorBus(cluster, injector, params,
                     context={"settop_kernels": kernels}, monitors=monitors)

    scenario = Scenario()
    for i, fault in enumerate(schedule):
        scenario.at(fault.at, f"fault-{i}:{fault.kind}",
                    lambda c, f=fault: injector.inject(f))
    scenario.at(schedule.horizon, "heal-all",
                lambda c: injector.heal_all())
    scenario.at(schedule.horizon + 1.0, "stop-viewers",
                lambda c: _stop_open_movies(c, kernels))
    scenario.observe_every(params.chaos_monitor_interval, "invariants",
                           lambda c: bus.probe())
    quiesce = 3 * params.max_failover + params.chaos_settle_slack
    scenario.lasting(schedule.horizon + quiesce)
    scenario.run(cluster)
    bus.finish()

    settop_monitor = None
    hb_summary = None
    hb_events = None
    for monitor in bus.monitors:
        if monitor.name == "settop_service":
            settop_monitor = monitor
        report = getattr(monitor, "report", None)
        if monitor.name == "hb_race" and report is not None:
            from repro.analysis.hb import (hb_events_from_trace,
                                           write_order_digests)
            hb_summary = {
                "races": len(report.races),
                "events": report.events,
                "writes": report.write_count(),
                "digests": write_order_digests(report),
            }
            hb_events = hb_events_from_trace(cluster.trace.events)
    return ChaosResult(
        seed=seed,
        schedule=schedule,
        violations=list(bus.violations),
        digest=trace_digest(cluster),
        trace_lines=len(cluster.trace.events),
        availability=(settop_monitor.summaries() if settop_monitor else {}),
        viewer_ops=sum(s.stats.opens + s.stats.orders + s.stats.game_rounds
                       + s.stats.tunes for s in sessions),
        finished_at=cluster.now,
        faults_injected=len(injector.injected),
        procs_killed=len(injector.killed),
        overload=collect_overload(cluster, kernels),
        degraded_ops=sum(s.stats.degraded for s in sessions),
        replication=collect_replication(cluster),
        disks=collect_disks(cluster),
        delivery=collect_delivery(cluster),
        hb=hb_summary,
        hb_events=hb_events,
    )


def run_seed(seed: int, n_faults: int = 8, horizon: float = 240.0,
             n_servers: int = 3, settops: int = 4,
             params: Optional[Params] = None, monitors=None,
             schedule: Optional[FaultSchedule] = None) -> ChaosResult:
    """Generate the seed's schedule (unless given one) and run it."""
    if schedule is None:
        schedule = generate_schedule(
            SeededRandom(seed).stream("chaos-schedule"),
            n_faults=n_faults, horizon=horizon, n_servers=n_servers,
            n_settops=settops)
    return run_schedule(schedule, seed, n_servers=n_servers,
                        settops=settops, params=params, monitors=monitors)


def _stop_open_movies(cluster: Cluster, kernels) -> None:
    """Post-horizon viewer cleanup, mirroring the chaos test's quiesce."""
    for stk in kernels:
        if not stk.host.up:
            continue
        app = stk.app_manager.current_app if stk.app_manager else None
        if app is not None and getattr(app, "movie", None) is not None:
            try:
                cluster.run_async(app.stop())
            except Exception:  # noqa: BLE001 - the service may still be down
                pass
