"""repro.chaos: deterministic fault injection with invariant monitoring.

The availability claims of the paper (sections 4.7, 9.5) are claims
about *arbitrary* failures, not the handful of scripted scenarios the
experiments replay.  This package tests them that way:

- :mod:`~repro.chaos.faults` / :mod:`~repro.chaos.schedule` -- faults as
  data; schedules sampled from a seed or loaded from JSON;
- :mod:`~repro.chaos.injector` -- the one place fault records become
  cluster actions (lint rule D009 fences the raw surface);
- :mod:`~repro.chaos.monitors` -- the invariant catalog, probed
  continuously while faults land;
- :mod:`~repro.chaos.engine` -- seeded end-to-end runs with replayable
  trace digests;
- :mod:`~repro.chaos.minimize` -- shrink a failing schedule to a
  minimal repro and write it to ``benchmarks/out/``.

Driven by ``repro chaos --seeds N`` (see the CLI) and the chaos-smoke CI
job.
"""

from repro.chaos.engine import (ChaosError, ChaosResult, run_schedule,
                                run_seed, trace_digest)
from repro.chaos.faults import Fault, FaultError, FAULT_KINDS
from repro.chaos.injector import FaultInjector
from repro.chaos.minimize import (MinimizeResult, minimize_schedule,
                                  write_minimal)
from repro.chaos.monitors import (Monitor, MonitorBus, Violation,
                                  default_monitors)
from repro.chaos.schedule import FaultSchedule, generate_schedule

__all__ = [
    "ChaosError", "ChaosResult", "run_schedule", "run_seed", "trace_digest",
    "Fault", "FaultError", "FAULT_KINDS", "FaultInjector",
    "MinimizeResult", "minimize_schedule", "write_minimal",
    "Monitor", "MonitorBus", "Violation", "default_monitors",
    "FaultSchedule", "generate_schedule",
]
