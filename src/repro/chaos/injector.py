"""Turns fault records into cluster actions, leaving a trace behind.

The injector is the only code that touches the raw fault surface
(``Network.partition``, ``set_loss``, host crash/boot, process kill) on
behalf of the chaos engine -- lint rule D009 keeps everyone else off it.
Every injection emits one ``chaos.inject`` trace event, so a trace
digest pins the schedule as well as the system's response, and a replay
that diverges in *injection* (not just reaction) is caught too.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.chaos.faults import Fault, FaultError, parse_target
from repro.cluster.builder import Cluster, ClusterClient
from repro.core.naming.client import NameClient
from repro.sim.host import Host, Process
from repro.sim.rand import SeededRandom

#: load_surge probe operation per service: (method, args).  Chosen to be
#: cheap reads that still traverse the service's backing dependencies
#: (db, MDS) so saturation is real, not synthetic.
SURGE_OPS: Dict[str, tuple] = {
    "vod": ("getBookmark", ("surge-probe",)),
    "shopping": ("catalog", ()),
    "mms": ("listTitles", ()),
    "mds": ("listTitles", ()),
}


class FaultInjector:
    """Applies :class:`Fault` records to a live cluster.

    ``killed`` records every process a chaos fault took down (including
    whole-host snapshots), with the injection time -- the future-leak
    monitor walks it to assert that a crash cancels everything it owned.
    """

    def __init__(self, cluster: Cluster, rng: SeededRandom):
        self.cluster = cluster
        self.rng = rng
        self.killed: List[dict] = []        # {"t": float, "proc": Process}
        self.injected: List[Fault] = []
        self._operator_clients: Dict[str, ClusterClient] = {}
        # OCS runtimes whose servant_lag a slow_consumer fault set; the
        # end-of-horizon heal restores them.
        self._lagged_runtimes: List[object] = []

    # -- entry points -----------------------------------------------------

    def inject(self, fault: Fault) -> None:
        handler = getattr(self, f"_do_{fault.kind}", None)
        if handler is None:
            raise FaultError(f"no injector for fault kind {fault.kind!r}")
        self.cluster.trace.emit("chaos", "inject", kind=fault.kind,
                                detail=fault.describe())
        self.injected.append(fault)
        handler(fault)

    def heal_all(self) -> None:
        """End-of-horizon cleanup: heal splits, clear link faults."""
        self.cluster.trace.emit("chaos", "heal_all")
        self.cluster.net.heal_partitions()
        self.cluster.net.clear_faults()
        for runtime in self._lagged_runtimes:
            runtime.servant_lag = 0.0
        self._lagged_runtimes.clear()
        # Un-wedge and disarm torn writes so verdict-time probes can run.
        # Write barriers stay armed: buffered-but-unsynced state is part
        # of what the durability monitor is judging.
        for host in self.cluster.servers:
            host.disk.heal()

    # -- process / node faults -------------------------------------------

    def _do_kill_service(self, fault: Fault) -> None:
        index = int(fault.args["server"])
        name = str(fault.args["service"])
        proc = self.cluster.find_service(index, name)
        if proc is not None:
            self._record_kill([proc])
        self.cluster.kill_service(index, name)

    def _do_kill_ssc(self, fault: Fault) -> None:
        index = int(fault.args["server"])
        host = self.cluster.servers[index]
        # The SSC's children die with it (it wait()s on them): snapshot
        # the whole process table so the leak monitor sees the cascade.
        self._record_kill(list(host.processes))
        self.cluster.kill_ssc(index)

    def _do_stop_service(self, fault: Fault) -> None:
        """Operator stop through the CSC: the service is *not* restarted.

        A kill is undone by the local SSC's supervision, and a raw SSC
        ``stopService`` is undone by the CSC's reconcile pass -- an
        operator stop must go through the CSC's ``stopServiceOn`` so the
        placement itself changes (section 8.1).  This is how the
        failover drill takes a primary down for good: the backup must
        win the name-binding race instead (section 5.2).
        """
        index = int(fault.args["server"])
        name = str(fault.args["service"])
        target = self.cluster.servers[index]
        operators = [h for h in self.cluster.servers if h.up]
        if not operators:
            return
        client = self._operator_on(operators[0])
        params = self.cluster.params

        async def stop() -> None:
            for _attempt in range(5):
                try:
                    csc = await client.names.resolve("svc/csc")
                    await client.runtime.invoke(
                        csc, "stopServiceOn", (name, target.ip),
                        timeout=params.call_timeout)
                    return
                except Exception:  # noqa: BLE001 - no primary yet; retry
                    await client.kernel.sleep(2.0)

        client.process.create_task(stop(), name=f"chaos-stop-{name}").detach()

    def _do_crash_server(self, fault: Fault) -> None:
        index = int(fault.args["server"])
        self._record_kill(list(self.cluster.servers[index].processes))
        self.cluster.crash_server(index)

    def _do_reboot_server(self, fault: Fault) -> None:
        self.cluster.reboot_server(int(fault.args["server"]))

    def _do_crash_settop(self, fault: Fault) -> None:
        index = int(fault.args["settop"])
        if index >= len(self.cluster.settops):
            return
        self._record_kill(list(self.cluster.settops[index].processes))
        self.cluster.crash_settop(index)

    # -- network faults ---------------------------------------------------

    def _do_partition(self, fault: Fault) -> None:
        side_a = {self._server_ip(i) for i in fault.args["servers_a"]}
        side_b = {self._server_ip(i) for i in fault.args["servers_b"]}
        if side_a & side_b:
            raise FaultError("partition sides overlap")
        self.cluster.net.partition(side_a, side_b)

    def _do_heal(self, fault: Fault) -> None:
        self.cluster.net.heal_partitions()

    def _do_loss(self, fault: Fault) -> None:
        ip = self._target_ip(str(fault.args["target"]))
        if ip is not None:
            self.cluster.net.set_loss(ip, float(fault.args["probability"]),
                                      self.rng.stream(f"loss-{ip}"))

    def _do_delay(self, fault: Fault) -> None:
        ip = self._target_ip(str(fault.args["target"]))
        if ip is not None:
            self.cluster.net.set_delay(ip, float(fault.args["extra"]))

    def _do_duplicate(self, fault: Fault) -> None:
        ip = self._target_ip(str(fault.args["target"]))
        if ip is not None:
            self.cluster.net.set_duplicate(
                ip, float(fault.args["probability"]),
                self.rng.stream(f"dup-{ip}"))

    def _do_reorder(self, fault: Fault) -> None:
        ip = self._target_ip(str(fault.args["target"]))
        if ip is not None:
            self.cluster.net.set_reorder(
                ip, float(fault.args["probability"]),
                float(fault.args.get("max_skew", 0.05)),
                self.rng.stream(f"reorder-{ip}"))

    def _do_corrupt(self, fault: Fault) -> None:
        ip = self._target_ip(str(fault.args["target"]))
        if ip is not None:
            self.cluster.net.set_corrupt(
                ip, float(fault.args["probability"]),
                self.rng.stream(f"corrupt-{ip}"))

    def _do_gray(self, fault: Fault) -> None:
        ip = self._server_ip(int(fault.args["server"]))
        self.cluster.net.set_gray(ip, float(fault.args["reply_lag"]))

    def _do_clear_link_faults(self, fault: Fault) -> None:
        self.cluster.net.clear_faults()

    # -- overload faults (PR 4) -------------------------------------------

    def _do_load_surge(self, fault: Fault) -> None:
        """Flash crowd: burst clients on settop hosts hammer one service.

        Clients run on settops (not servers) so neighborhood Selectors
        resolve normally, and every call carries a short deadline -- the
        surge exercises shedding, in-queue expiry, and degraded modes
        all at once.
        """
        service = str(fault.args["service"])
        calls = int(fault.args["calls"])
        duration = float(fault.args.get("duration", 10.0))
        op = SURGE_OPS.get(service)
        if op is None:
            return   # no cheap probe op known for this service
        if "settop" in fault.args:
            index = int(fault.args["settop"])
            hosts = ([self.cluster.settops[index]]
                     if index < len(self.cluster.settops) else [])
        else:
            hosts = list(self.cluster.settops)
        hosts = [h for h in hosts if h.up]
        if not hosts:
            return
        surge_id = len(self.injected)
        for i, host in enumerate(hosts):
            share = calls // len(hosts) + (1 if i < calls % len(hosts) else 0)
            if share == 0:
                continue
            client = self.cluster.client_on(host,
                                            name=f"chaos-surge-{service}")
            # A settop host has no local NS replica; point the surge
            # client's name library at the cluster's replica set.
            client.names = NameClient(
                client.runtime,
                self.cluster.cluster_config["ns_replica_ips"],
                self.cluster.params)
            client.process.create_task(
                self._surge_driver(
                    client, service, op, share, duration,
                    self.rng.stream(f"surge-{surge_id}-{i}")),
                name=f"surge-{service}-{i}").detach()

    async def _surge_driver(self, client: ClusterClient, service: str,
                            op, share: int, duration: float,
                            rng: SeededRandom) -> None:
        method, args = op
        params = self.cluster.params
        try:
            ref = await client.names.wait_resolve(f"svc/{service}",
                                                  timeout=duration)
        except Exception:  # noqa: BLE001 - nothing to surge at
            return
        gap = duration / share
        for _ in range(share):
            deadline = client.kernel.now + params.call_timeout
            client.runtime.invoke(ref, method, args,
                                  timeout=params.call_timeout,
                                  deadline=deadline).detach()
            await client.kernel.sleep(rng.uniform(0.5 * gap, 1.5 * gap))

    def _do_slow_consumer(self, fault: Fault) -> None:
        """The named service dequeues slowly: queues build, work expires."""
        index = int(fault.args["server"])
        name = str(fault.args["service"])
        lag = float(fault.args["lag"])
        proc = self.cluster.find_service(index, name)
        if proc is None:
            return
        runtime = proc.attachments.get("ocs")
        if runtime is None:
            return
        runtime.servant_lag = lag
        if lag > 0:
            self._lagged_runtimes.append(runtime)

    # -- storage faults (PR 8) --------------------------------------------

    def _do_disk_lose_unsynced(self, fault: Fault) -> None:
        """Writes stop being durable unless sync()ed (volatile write cache)."""
        index = int(fault.args["server"])
        self.cluster.servers[index].disk.write_barrier = True

    def _do_disk_torn_write(self, fault: Fault) -> None:
        """The next buffered key is torn (half-written) at the next crash."""
        index = int(fault.args["server"])
        self.cluster.servers[index].disk.arm_torn_write()

    def _do_disk_corrupt(self, fault: Fault) -> None:
        """Bit-rot one durable key in place (latent sector error)."""
        index = int(fault.args["server"])
        key = str(fault.args["key"])
        self.cluster.servers[index].disk.corrupt(key)

    def _do_disk_wedge(self, fault: Fault) -> None:
        """Every disk op raises DiskWedged; auto-heals after ``duration``."""
        index = int(fault.args["server"])
        disk = self.cluster.servers[index].disk
        disk.wedged = True
        duration = fault.args.get("duration")
        if duration is not None:
            def unwedge() -> None:
                disk.wedged = False
            self.cluster.kernel.call_later(float(duration), unwedge)

    # -- helpers ----------------------------------------------------------

    def _record_kill(self, procs: List[Process]) -> None:
        now = self.cluster.now
        for proc in procs:
            self.killed.append({"t": now, "proc": proc})

    def _server_ip(self, index: int) -> str:
        try:
            return self.cluster.server_ips[index]
        except IndexError:
            raise FaultError(f"no server {index} in this cluster") from None

    def _target_ip(self, target: str) -> Optional[str]:
        kind, index = parse_target(target)
        if kind == "server":
            return self._server_ip(index)
        if index >= len(self.cluster.settops):
            return None   # schedule written for a larger settop population
        return self.cluster.settops[index].ip

    def _operator_on(self, host: Host) -> ClusterClient:
        client = self._operator_clients.get(host.ip)
        if client is None or not client.process.alive:
            client = self.cluster.client_on(host, name="chaos-operator")
            self._operator_clients[host.ip] = client
        return client
