"""Cluster invariant monitors: what must stay true under any fault storm.

Each monitor watches one of the paper's structural guarantees from the
*outside* (through process attachments and network state, never by
calling into the cluster -- a probe must not perturb the run).  The
:class:`MonitorBus` checks all of them on a fixed cadence during a chaos
run and once more after the quiesce, and every violation lands in the
trace so a failing run's digest pins the failure.

The catalog (DESIGN.md section 9):

- at most one CSC believes it is primary (section 6.2);
- the name service keeps majority agreement: never two masters for
  longer than an election settles, never masterless while a quorum of
  replicas is up and connected (section 4.6);
- a dead binding is audited out within the paper's detection bound
  (section 4.7, ``Params.chaos_audit_bound``);
- a per-host binding cache never keeps *serving* a dead binding past
  that same bound: coherence is by exception, so a hit on a dead entry
  must raise-and-invalidate, not mask the failure (PR 5);
- every settop is either served or its outage is accounted in an
  :class:`AvailabilityTimeline`, and service returns once faults heal
  (section 9.5);
- a killed process leaks no Future: everything it owned is cancelled
  (section 3.2.1's incarnation rule, enforced at the task layer);
- no server executes work whose deadline has already expired -- the
  deadline envelope must be honored on both sides of the queue (PR 4);
- admission-gated services keep their queues bounded under any surge:
  the gate's limits are never exceeded, only shed around (PR 4);
- every NS/db replica's change-log cursor stays within
  ``Params.replica_lag_bound`` of its primary while live and connected,
  and matches it exactly after the quiesce (PR 7);
- every write a client saw acknowledged is readable after any
  crash-and-recovery -- the durability contract the sync-before-ack
  barrier exists to uphold (PR 8, falsifiable via
  ``Params.ack_after_sync=False``);
- no non-idempotent request id executes twice on the same server under
  duplication/reordering/retries -- the at-most-once contract the reply
  cache exists to uphold (PR 9, falsifiable via
  ``OCSRuntime.dedup_enabled=False``).
"""

from __future__ import annotations

import copy

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.chaos.injector import FaultInjector
from repro.cluster.builder import Cluster
from repro.core.params import Params
from repro.metrics.availability import AvailabilityTimeline
from repro.ocs.objref import ANY_INCARNATION

#: how long a killed process gets to drain its cancelled tasks before
#: an undone task counts as a leaked Future.
LEAK_GRACE = 10.0


@dataclass(frozen=True)
class Violation:
    """One observed invariant breach."""

    monitor: str
    time: float
    detail: str


class Monitor:
    """Base: bind to a run, then get checked on the bus cadence."""

    name = "monitor"

    def bind(self, cluster: Cluster, injector: FaultInjector,
             params: Params, context: dict) -> None:
        self.cluster = cluster
        self.injector = injector
        self.params = params
        self.context = context

    def check(self) -> List[Violation]:
        """Periodic probe; called every ``chaos_monitor_interval``."""
        return []

    def finish(self) -> List[Violation]:
        """Final probe after the post-horizon quiesce."""
        return []

    def _violation(self, detail: str) -> Violation:
        return Violation(monitor=self.name, time=self.cluster.now,
                         detail=detail)


class CscPrimaryMonitor(Monitor):
    """At most one live CSC may believe it is the cluster primary.

    The handoff goes through the name-binding race (section 5.2), and an
    *isolated* primary cannot learn its binding was audited away -- the
    binder's verify loop "can't tell right now" while the name service
    is unreachable.  So the invariant is checked in connected operation:
    two primaries may overlap only while a partition is in force, plus
    the time one verify cycle needs to demote the stale one afterwards
    (one ``backup_bind_retry`` plus resolve timeouts, measured on the
    probe cadence).  Dual primaries persisting past that window -- or
    any dual primaries on a never-partitioned run -- are split-brain.
    """

    name = "csc_primary"

    def bind(self, cluster, injector, params, context) -> None:
        super().bind(cluster, injector, params, context)
        self._grace = (params.backup_bind_retry + 2 * params.call_timeout
                       + 2 * params.chaos_monitor_interval + 5.0)
        self._dual_since: Optional[float] = None
        self._reported = False

    def _primaries(self) -> List[str]:
        primaries = []
        for host in self.cluster.servers:
            proc = host.find_process("csc")
            if proc is None or not proc.alive:
                continue
            service = proc.attachments.get("service")
            if service is not None and getattr(service, "is_primary", False):
                primaries.append(host.ip)
        return primaries

    def check(self) -> List[Violation]:
        now = self.cluster.now
        primaries = self._primaries()
        if len(primaries) <= 1 or self.cluster.net.partitioned:
            # Single primary, or a split where the stale one is excused.
            self._dual_since = None
            self._reported = False
            return []
        if self._dual_since is None:
            self._dual_since = now
        if (not self._reported
                and now - self._dual_since > self._grace):
            self._reported = True
            return [self._violation(
                f"{len(primaries)} CSCs claim primary for "
                f"{now - self._dual_since:.1f}s on a connected network: "
                f"{sorted(primaries)}")]
        return []

    def finish(self) -> List[Violation]:
        primaries = self._primaries()
        if len(primaries) > 1:
            return [self._violation(
                f"after quiesce: {len(primaries)} CSCs claim primary: "
                f"{sorted(primaries)}")]
        return []


class NsAgreementMonitor(Monitor):
    """Name-service majority agreement (section 4.6).

    Two live masters may coexist only for as long as an election takes
    to settle (the loser steps down on seeing a higher epoch); persistent
    split mastership means quorum is broken.  Conversely, with a quorum
    of replicas alive and no partition in force, *some* master must
    emerge within the fail-over bound.
    """

    name = "ns_agreement"

    def bind(self, cluster, injector, params, context) -> None:
        super().bind(cluster, injector, params, context)
        # An isolated old master steps down after missing heartbeat
        # acks; two election cycles plus margin covers the window.
        self._split_grace = 2 * (params.ns_election_timeout[1]
                                 + params.ns_heartbeat) + 10.0
        self._masterless_grace = 2 * params.max_failover
        self._split_since: Optional[float] = None
        self._split_reported = False
        self._masterless_since: Optional[float] = None
        self._masterless_reported = False

    def _masters(self) -> Tuple[List[str], int]:
        masters, live = [], 0
        for host in self.cluster.servers:
            proc = host.find_process("ns")
            if proc is None or not proc.alive:
                continue
            replica = proc.attachments.get("ns_replica")
            if replica is None:
                continue
            live += 1
            if replica.is_master:
                masters.append(host.ip)
        return masters, live

    def check(self) -> List[Violation]:
        now = self.cluster.now
        masters, live = self._masters()
        out: List[Violation] = []

        if len(masters) > 1:
            if self._split_since is None:
                self._split_since = now
            elif (not self._split_reported
                  and now - self._split_since > self._split_grace):
                self._split_reported = True
                out.append(self._violation(
                    f"{len(masters)} ns masters for "
                    f"{now - self._split_since:.1f}s: {sorted(masters)}"))
        else:
            self._split_since = None
            self._split_reported = False

        quorum = (len(self.cluster.servers) // 2) + 1
        can_elect = (live >= quorum and not masters
                     and not self.cluster.net.partitioned)
        if can_elect:
            if self._masterless_since is None:
                self._masterless_since = now
            elif (not self._masterless_reported
                  and now - self._masterless_since > self._masterless_grace):
                self._masterless_reported = True
                out.append(self._violation(
                    f"no ns master for {now - self._masterless_since:.1f}s "
                    f"with {live} replicas up"))
        else:
            self._masterless_since = None
            self._masterless_reported = False
        return out

    def finish(self) -> List[Violation]:
        masters, live = self._masters()
        quorum = (len(self.cluster.servers) // 2) + 1
        if live >= quorum and len(masters) != 1:
            return [self._violation(
                f"after quiesce: {len(masters)} masters with {live} "
                f"replicas up")]
        return []


class AuditConvergenceMonitor(Monitor):
    """Dead bindings must be audited out within the paper's bound.

    Tracks every leaf binding the acting master holds whose referent is
    no longer a live process; if one outlives
    ``Params.chaos_audit_bound`` the RAS/name-service audit chain
    (section 4.7) has failed to converge.  The clock pauses (resets)
    while a partition is in force or mastership is unsettled -- the
    audit cannot be expected to run across a split.
    """

    name = "audit_convergence"

    def bind(self, cluster, injector, params, context) -> None:
        super().bind(cluster, injector, params, context)
        self._dead_since: Dict[tuple, float] = {}
        self._server_ips = set(cluster.server_ips)

    def check(self) -> List[Violation]:
        now = self.cluster.now
        if self.cluster.net.partitioned:
            self._dead_since.clear()
            return []
        master = self._acting_master()
        if master is None:
            self._dead_since.clear()
            return []
        out: List[Violation] = []
        seen_dead = set()
        for path, ref in master.leaf_bindings():
            # The audit chain covers server-hosted objects (the RAS runs
            # on servers); settop-side refs age out by other means.
            if ref.ip not in self._server_ips:
                continue
            if self._ref_alive(ref):
                continue
            key = (path, ref.ip, ref.port, tuple(ref.incarnation),
                   ref.object_id)
            seen_dead.add(key)
            first = self._dead_since.setdefault(key, now)
            if now - first > self.params.chaos_audit_bound:
                out.append(self._violation(
                    f"dead binding {path} -> {ref.ip}:{ref.port} not "
                    f"audited out after {now - first:.1f}s"))
                del self._dead_since[key]
        for key in list(self._dead_since):
            if key not in seen_dead:
                del self._dead_since[key]
        return out

    def finish(self) -> List[Violation]:
        master = self._acting_master()
        if master is None:
            return []
        stale = []
        for path, ref in master.leaf_bindings():
            if ref.ip in self._server_ips and not self._ref_alive(ref):
                stale.append(path)
        if stale:
            return [self._violation(
                f"after quiesce: {len(stale)} dead binding(s) remain: "
                f"{sorted(stale)[:5]}")]
        return []

    def _acting_master(self):
        for host in self.cluster.servers:
            proc = host.find_process("ns")
            if proc is None or not proc.alive:
                continue
            replica = proc.attachments.get("ns_replica")
            if replica is not None and replica.is_master:
                return replica
        return None

    def _ref_alive(self, ref) -> bool:
        try:
            host = self.cluster.net.host_at(ref.ip)
        except KeyError:
            return False
        if not host.up:
            return False
        return any(proc.alive and tuple(proc.incarnation) ==
                   tuple(ref.incarnation) for proc in host.processes)


class CacheCoherenceMonitor(Monitor):
    """A binding cache must not keep *serving* a dead binding (PR 5).

    Coherence is by exception: a cache may lazily *hold* a dead entry
    forever (nobody is using it, so nobody learns it died), but if
    lookups keep hitting an entry whose referent process is dead, the
    very next use raises and the client must invalidate.  A dead entry
    that accumulates hits past ``Params.chaos_audit_bound`` after its
    referent died means the invalidation path is broken and the cache
    is masking the failure from the rebind machinery -- exactly the bug
    a coherence-free cache design must be policed against.  The clock
    pauses while a partition is in force (a partitioned settop's calls
    cannot raise, so it cannot learn).
    """

    name = "cache_coherence"

    def bind(self, cluster, injector, params, context) -> None:
        super().bind(cluster, injector, params, context)
        # (host_ip, name, endpoint+incarnation) -> (first seen dead at,
        # entry.hits at that moment)
        self._dead_since: Dict[tuple, tuple] = {}

    def _caches(self):
        hosts = list(self.cluster.servers) + list(self.cluster.settops)
        for host in hosts:
            if not host.up:
                continue
            cache = getattr(host, "binding_cache", None)
            if cache is not None:
                yield host, cache

    def check(self) -> List[Violation]:
        now = self.cluster.now
        if self.cluster.net.partitioned:
            self._dead_since.clear()
            return []
        out: List[Violation] = []
        seen = set()
        for host, cache in self._caches():
            for name, entry in cache.entries():
                if tuple(entry.ref.incarnation) == tuple(ANY_INCARNATION):
                    continue  # bootstrap refs never go stale
                if self._ref_alive(entry.ref):
                    continue
                key = (host.ip, name, entry.ref.ip, entry.ref.port,
                       tuple(entry.ref.incarnation))
                seen.add(key)
                first, hits_then = self._dead_since.setdefault(
                    key, (now, entry.hits))
                if (entry.hits > hits_then
                        and now - first > self.params.chaos_audit_bound):
                    out.append(self._violation(
                        f"{host.ip} cache still serving dead binding "
                        f"{name} -> {entry.ref.ip}:{entry.ref.port} "
                        f"{now - first:.1f}s after its referent died "
                        f"({entry.hits - hits_then} hits since)"))
                    del self._dead_since[key]
        for key in list(self._dead_since):
            if key not in seen:
                del self._dead_since[key]
        return out

    def finish(self) -> List[Violation]:
        return self.check()

    def _ref_alive(self, ref) -> bool:
        try:
            host = self.cluster.net.host_at(ref.ip)
        except KeyError:
            return False
        if not host.up:
            return False
        return any(proc.alive and tuple(proc.incarnation) ==
                   tuple(ref.incarnation) for proc in host.processes)


class SettopServiceMonitor(Monitor):
    """Every settop is served, or its outage is on an availability timeline.

    A settop counts as *down* when its host is crashed or its current
    app holds an open movie that is neither playing nor finished (a
    mid-play stall).  Downtime itself is not a violation -- it is the
    accounting the paper's section 9.5 availability numbers come from.
    The violation is an outage that never closes: once faults heal and
    the quiesce has run, every powered-on settop must be served again.
    """

    name = "settop_service"

    def bind(self, cluster, injector, params, context) -> None:
        super().bind(cluster, injector, params, context)
        self.timelines: Dict[str, AvailabilityTimeline] = {}
        for stk in context.get("settop_kernels", []):
            self.timelines[stk.host.ip] = AvailabilityTimeline(cluster.kernel)

    def _is_served(self, stk) -> bool:
        if not stk.host.up:
            return False
        app = stk.app_manager.current_app if stk.app_manager else None
        if app is None:
            return True
        stalled = (getattr(app, "movie", None) is not None
                   and not getattr(app, "playing", False)
                   and not getattr(app, "finished", False))
        return not stalled

    def check(self) -> List[Violation]:
        for stk in self.context.get("settop_kernels", []):
            timeline = self.timelines[stk.host.ip]
            if self._is_served(stk):
                timeline.mark_up()
            else:
                timeline.mark_down()
        return []

    def finish(self) -> List[Violation]:
        self.check()
        out = []
        for stk in self.context.get("settop_kernels", []):
            if stk.host.up and not self.timelines[stk.host.ip].is_up:
                outage = self.timelines[stk.host.ip].outages()[-1]
                out.append(self._violation(
                    f"settop {stk.host.ip} still unserved after quiesce "
                    f"(outage open since t={outage[0]:.1f})"))
        return out

    def summaries(self) -> Dict[str, dict]:
        return {ip: tl.summary() for ip, tl in sorted(self.timelines.items())}


class FutureLeakMonitor(Monitor):
    """No Future survives its owner's crash (section 3.2.1).

    ``Process.kill`` cancels every task the incarnation owned and leaves
    the set on ``cancelled_tasks``; a task still pending ``LEAK_GRACE``
    seconds after a chaos kill is a Future that outlived its process --
    exactly the stale-incarnation hazard object references exist to
    prevent.
    """

    name = "future_leak"

    def bind(self, cluster, injector, params, context) -> None:
        super().bind(cluster, injector, params, context)
        self._checked = 0   # prefix of injector.killed already verified

    def check(self) -> List[Violation]:
        now = self.cluster.now
        out: List[Violation] = []
        records = self.injector.killed
        while self._checked < len(records):
            record = records[self._checked]
            proc = record["proc"]
            if proc.alive:
                # Snapshotted before the kill landed but survived (e.g. a
                # process the SSC cascade did not reach): nothing to check.
                self._checked += 1
                continue
            if now - record["t"] <= LEAK_GRACE:
                break   # too fresh; re-examine on a later probe
            leaked = [t for t in proc.cancelled_tasks if not t.done()]
            if leaked:
                names = sorted(t.name or "?" for t in leaked)[:5]
                out.append(self._violation(
                    f"process {proc.name} (pid {proc.pid}) leaked "
                    f"{len(leaked)} task(s) across its crash: {names}"))
            self._checked += 1
        return out

    def finish(self) -> List[Violation]:
        out: List[Violation] = []
        for record in self.injector.killed[self._checked:]:
            proc = record["proc"]
            if proc.alive:
                continue
            leaked = [t for t in proc.cancelled_tasks if not t.done()]
            if leaked:
                names = sorted(t.name or "?" for t in leaked)[:5]
                out.append(self._violation(
                    f"process {proc.name} (pid {proc.pid}) leaked "
                    f"{len(leaked)} task(s) across its crash: {names}"))
        self._checked = len(self.injector.killed)
        out.extend(self._sweep_pending())
        return out

    def _sweep_pending(self) -> List[Violation]:
        """PR 4 extension: a shed or dropped call must still resolve the
        caller's Future.  Any pending client call whose *explicit*
        deadline passed more than ``LEAK_GRACE`` ago means the reply was
        lost *and* the local deadline timer never fired -- a leak the
        shed/expiry paths could introduce."""
        now = self.cluster.now
        out: List[Violation] = []
        for runtime in _live_runtimes(self.cluster):
            for call_id, pending in runtime._pending.items():
                deadline = getattr(pending, "deadline", None)
                if deadline is None or pending.future.done():
                    continue
                if now - deadline > LEAK_GRACE:
                    out.append(self._violation(
                        f"call {call_id} ({pending.method}) still pending "
                        f"{now - deadline:.1f}s past its deadline"))
        return out


class ExpiredWorkMonitor(Monitor):
    """No server executes work whose deadline already expired (PR 4).

    Deadline propagation has two enforcement points -- before enqueue
    and after dequeue -- and the runtime counts any expired call that
    slips through both in ``expired_executions``.  A nonzero count means
    a server burned capacity on an answer no caller was still waiting
    for, the exact waste the overload design exists to prevent.
    """

    name = "expired_work"

    def bind(self, cluster, injector, params, context) -> None:
        super().bind(cluster, injector, params, context)
        # (ip, port) identifies one runtime incarnation.
        self._reported: Dict[tuple, int] = {}

    def check(self) -> List[Violation]:
        return self._sweep()

    def finish(self) -> List[Violation]:
        return self._sweep()

    def _sweep(self) -> List[Violation]:
        out: List[Violation] = []
        for runtime in _live_runtimes(self.cluster):
            count = getattr(runtime, "expired_executions", 0)
            key = (runtime.ip, runtime.port)
            if count > self._reported.get(key, 0):
                self._reported[key] = count
                out.append(self._violation(
                    f"{runtime.process.name} on {runtime.ip} executed "
                    f"{count} call(s) past their deadline"))
        return out


class QueueBoundMonitor(Monitor):
    """Admission-gated queues stay within their configured bounds (PR 4).

    The gate's whole contract is that overload becomes *sheds* (bounded
    work, fast ``Overloaded`` replies) rather than unbounded queues; a
    probe catching ``queued > max_queue`` or ``inflight > max_inflight``
    means a code path admitted work around the gate.  Peak counters are
    checked at finish so a between-probes excursion is caught too.
    """

    name = "queue_bound"

    def check(self) -> List[Violation]:
        out: List[Violation] = []
        for runtime, gate in _gated_runtimes(self.cluster):
            total_bound = gate.max_inflight + gate.max_queue
            if gate.queued > gate.max_queue:
                out.append(self._violation(
                    f"{gate.service}: queue depth {gate.queued} exceeds "
                    f"bound {gate.max_queue}"))
            # A lag burst can move a full queue inflight at once, so the
            # hard bound on executing work is the admitted total.
            if gate.inflight + gate.queued > total_bound:
                out.append(self._violation(
                    f"{gate.service}: {gate.inflight} inflight + "
                    f"{gate.queued} queued exceeds admitted bound "
                    f"{total_bound}"))
        return out

    def finish(self) -> List[Violation]:
        out = self.check()
        for runtime, gate in _gated_runtimes(self.cluster):
            total_bound = gate.max_inflight + gate.max_queue
            if gate.peak_queue > gate.max_queue:
                out.append(self._violation(
                    f"{gate.service}: peak queue depth {gate.peak_queue} "
                    f"exceeded bound {gate.max_queue} during the run"))
            if gate.peak_inflight > total_bound:
                out.append(self._violation(
                    f"{gate.service}: peak inflight {gate.peak_inflight} "
                    f"exceeded admitted bound {total_bound} during the run"))
        return out


class HbRaceMonitor(Monitor):
    """Unordered conflicting writes to shared state (repro.analysis.hb).

    Only active when the run was built with ``Params.hb_trace``: the
    cluster then streams ``hb.*`` events (message edges + shared-state
    writes) into the trace, and the final sweep replays them through the
    vector-clock analyzer.  A race -- two writes to the same logical
    variable with different versions and no happens-before path between
    their actors -- is split-brain made visible *even when the damage
    healed* before the structural monitors could see it.
    """

    name = "hb_race"
    MAX_REPORTED = 5

    def finish(self) -> List[Violation]:
        if self.cluster.kernel.hb_log is None:
            return []
        from repro.analysis.hb import analyze_trace
        report = analyze_trace(self.cluster.trace.events)
        self.report = report  # exposed for ChaosResult / CLI summaries
        out = [self._violation(f"unordered conflicting writes: {race.describe()}")
               for race in report.races[:self.MAX_REPORTED]]
        if len(report.races) > self.MAX_REPORTED:
            out.append(self._violation(
                f"... and {len(report.races) - self.MAX_REPORTED} more "
                f"hb race(s) suppressed"))
        return out


def _live_runtimes(cluster: Cluster):
    """Every live server-side OCS runtime (the monitors' probe surface)."""
    for host in cluster.servers:
        if not host.up:
            continue
        for proc in host.processes:
            if not proc.alive:
                continue
            runtime = proc.attachments.get("ocs")
            if runtime is not None:
                yield runtime


def _gated_runtimes(cluster: Cluster):
    for runtime in _live_runtimes(cluster):
        gate = getattr(runtime, "admission", None)
        if gate is not None:
            yield runtime, gate


class ReplicaLagMonitor(Monitor):
    """Every replica's change-log cursor keeps up with its primary (PR 7).

    Probes the NS replicas (``ns_replica`` attachment) and the db
    replicas (``service`` attachment) from the outside.  Incremental
    log shipping makes any gap O(gap) ops to close -- one heartbeat (NS)
    or one anti-entropy poll (db) away -- so a live, connected replica
    observed behind a settled primary's cursor must reach that cursor
    within ``Params.replica_lag_bound``.  Lag that *persists* is the
    silent replication gap this monitor exists to expose: a promoted
    backup would serve diverged data.  The clock pauses while a
    partition is in force or while no single primary is settled; after
    the quiesce every live replica must match its primary exactly.
    """

    name = "replica_lag_bounded"

    def bind(self, cluster, injector, params, context) -> None:
        super().bind(cluster, injector, params, context)
        self._behind: Dict[tuple, Tuple[float, int]] = {}
        self._reported: set = set()

    def _groups(self) -> List[Tuple[str, int, List[Tuple[str, int]]]]:
        """Per service kind: the settled primary's seq + member cursors."""
        groups = []
        ns_primaries: List[int] = []
        ns_members: List[Tuple[str, int]] = []
        db_primaries: List[int] = []
        db_members: List[Tuple[str, int]] = []
        for host in self.cluster.servers:
            proc = host.find_process("ns")
            if proc is not None and proc.alive:
                replica = proc.attachments.get("ns_replica")
                if replica is not None:
                    ns_members.append((host.ip, replica.store.applied_seq))
                    if replica.is_master:
                        ns_primaries.append(replica.store.applied_seq)
            proc = host.find_process("db")
            if proc is not None and proc.alive:
                service = proc.attachments.get("service")
                log = getattr(service, "log", None)
                if log is not None:
                    db_members.append((host.ip, log.seq))
                    if getattr(service, "is_primary", False):
                        db_primaries.append(log.seq)
        if len(ns_primaries) == 1:
            groups.append(("ns", ns_primaries[0], ns_members))
        if len(db_primaries) == 1:
            groups.append(("db", db_primaries[0], db_members))
        return groups

    def check(self) -> List[Violation]:
        now = self.cluster.now
        if self.cluster.net.partitioned:
            self._behind.clear()
            return []
        out: List[Violation] = []
        seen = set()
        for kind, primary_seq, members in self._groups():
            for ip, seq in members:
                if seq >= primary_seq:
                    continue
                key = (kind, ip)
                seen.add(key)
                if key not in self._behind:
                    # First observation: remember the cursor to beat.
                    self._behind[key] = (now, primary_seq)
                    continue
                since, target = self._behind[key]
                if seq >= target:
                    # Reached the seq it was first seen behind: catch-up
                    # is live, re-arm against the primary's new cursor.
                    self._behind[key] = (now, primary_seq)
                    continue
                if (key not in self._reported
                        and now - since > self.params.replica_lag_bound):
                    self._reported.add(key)
                    out.append(self._violation(
                        f"{kind} replica {ip} wedged at seq {seq} < "
                        f"{target} for {now - since:.1f}s"))
        for key in list(self._behind):
            if key not in seen:
                del self._behind[key]
                self._reported.discard(key)
        return out

    def finish(self) -> List[Violation]:
        if self.cluster.net.partitioned:
            return []
        out: List[Violation] = []
        for kind, primary_seq, members in self._groups():
            for ip, seq in members:
                if seq != primary_seq:
                    out.append(self._violation(
                        f"after quiesce: {kind} replica {ip} at seq {seq}, "
                        f"primary at {primary_seq}"))
        return out


class DurabilityLedger:
    """Side-channel record of every client-visible write acknowledgement.

    The db primary and the NS master call :meth:`ack_db` / :meth:`ack_ns`
    at the exact instant a writer would see success (after the
    sync-before-ack barrier when ``Params.ack_after_sync`` is on, after
    the *buffered* write when it is off -- the sabotage the durability
    monitor must catch).  The ledger lives on the kernel, outside every
    host, so crashes cannot lose it: it is the monitor's ground truth
    for "the client was promised this".
    """

    def __init__(self, cluster: Cluster):
        self.cluster = cluster
        self.db_acks: List[dict] = []
        self.ns_acks: List[dict] = []

    def ack_db(self, ip: str, epoch: tuple, seq: int, table: str,
               key: str, value, deleted: bool) -> None:
        self.db_acks.append({
            "t": self.cluster.now, "ip": ip, "epoch": epoch, "seq": seq,
            "table": table, "key": key, "value": copy.deepcopy(value),
            "deleted": deleted,
            # An ack issued across a partition may belong to a minority
            # primary whose reign the heal erases; the monitor excuses it.
            "partitioned": self.cluster.net.partitioned,
        })

    def ack_ns(self, ip: str, epoch: int, seq: int, op: tuple) -> None:
        self.ns_acks.append({
            "t": self.cluster.now, "ip": ip, "epoch": epoch, "seq": seq,
            "op": copy.deepcopy(op),
            "partitioned": self.cluster.net.partitioned,
        })


class DurabilityMonitor(Monitor):
    """Every acked write is readable after any crash-and-recovery (PR 8).

    The replication design is primary/backup, not consensus, so the
    contract has a boundary: an ack is *binding* when the host that
    issued it is still the settled primary after the quiesce (it kept or
    reclaimed its role across any crash, so its durable image is the
    authoritative one).  Acks from a deposed primary or from a reign cut
    short by a partition are excused -- asynchronous fan-out means a
    promoted backup may legitimately miss the deposed primary's tail,
    and that loss is the known failover cost, not a storage bug.  What
    is *never* excused is the crash-reclaim path: a primary that synced,
    acked, crashed, and came back must still hold every acked value.
    With ``Params.ack_after_sync=False`` the barrier is gone and this
    monitor is what goes red -- the falsifiability check.

    db rule: for the last ack per ``(table, key)`` from the current
    primary's host on a connected network, the primary's durable table
    must read exactly the acked value (or lack the key, for a delete).
    NS rule: for every ack carried by the current master's reign
    (``ack.epoch == master.epoch``), the master's change log must still
    cover ``seq`` with that same epoch (or have compacted past it).
    """

    name = "durability"

    def bind(self, cluster, injector, params, context) -> None:
        super().bind(cluster, injector, params, context)
        self.ledger = DurabilityLedger(cluster)
        cluster.kernel.durability_ledger = self.ledger

    def finish(self) -> List[Violation]:
        return self._check_db() + self._check_ns()

    def _check_db(self) -> List[Violation]:
        primary = None
        for host in self.cluster.servers:
            proc = host.find_process("db")
            if proc is None or not proc.alive:
                continue
            service = proc.attachments.get("service")
            if service is not None and getattr(service, "is_primary", False):
                if primary is not None:
                    return []   # unsettled primaryship: nothing to judge
                primary = service
        if primary is None:
            return []
        last: Dict[tuple, dict] = {}
        for ack in self.ledger.db_acks:
            last[(ack["table"], ack["key"])] = ack
        out: List[Violation] = []
        disk = primary.host.disk
        for (table, key), ack in sorted(last.items()):
            if ack["partitioned"] or ack["ip"] != primary.host.ip:
                continue
            rows = disk.read("db/" + table, {})
            if not isinstance(rows, dict):
                out.append(self._violation(
                    f"db table {table} unreadable on primary "
                    f"{primary.host.ip}; acked write {key} (seq "
                    f"{ack['seq']}) is gone"))
                continue
            if ack["deleted"]:
                if key in rows:
                    out.append(self._violation(
                        f"db {table}/{key}: acked delete (seq {ack['seq']}) "
                        f"resurrected as {rows[key]!r}"))
            elif key not in rows:
                out.append(self._violation(
                    f"db {table}/{key}: acked write {ack['value']!r} "
                    f"(seq {ack['seq']}) lost after recovery"))
            elif rows[key] != ack["value"]:
                out.append(self._violation(
                    f"db {table}/{key}: acked value {ack['value']!r} "
                    f"(seq {ack['seq']}) reads back {rows[key]!r}"))
        return out

    def _check_ns(self) -> List[Violation]:
        master = None
        for host in self.cluster.servers:
            proc = host.find_process("ns")
            if proc is None or not proc.alive:
                continue
            replica = proc.attachments.get("ns_replica")
            if replica is not None and replica.is_master:
                if master is not None:
                    return []   # split mastership: ns_agreement's problem
                master = replica
        if master is None:
            return []
        out: List[Violation] = []
        log = master.changelog
        for ack in self.ledger.ns_acks:
            if ack["partitioned"] or ack["epoch"] != master.epoch:
                continue
            seq = ack["seq"]
            if seq <= log.base_seq:
                continue   # compacted into the snapshot: durable
            if log.epoch_at(seq) != ack["epoch"]:
                out.append(self._violation(
                    f"ns seq {seq} ({ack['op'][0]} {ack['op'][1]}): acked "
                    f"in epoch {ack['epoch']} but the master log "
                    f"{'ends at ' + str(log.seq) if seq > log.seq else 'holds another reign there'}"))
        return out


class EffectLedger:
    """Side-channel record of every non-idempotent servant execution.

    :meth:`repro.ocs.runtime.OCSRuntime._run_servant` stamps each
    execution of a two-way non-idempotent method with the call's
    ``(client_id, call_seq)`` request id, *regardless* of whether the
    reply cache is enabled -- that independence is what lets the
    at-most-once monitor catch a sabotaged (dedup-disabled) server
    actually double-executing.  The ledger lives on the kernel, outside
    every host, so crashes cannot lose it.
    """

    def __init__(self, cluster: Cluster):
        self.cluster = cluster
        #: request id -> list of {"t", "actor", "method"} executions.
        self.executions: Dict[tuple, List[dict]] = {}
        self.total = 0

    def record(self, request_id: tuple, actor: str, method: str,
               at: float) -> None:
        self.total += 1
        self.executions.setdefault(request_id, []).append(
            {"t": at, "actor": actor, "method": method})

    def double_executions(self) -> List[Tuple[tuple, List[dict]]]:
        """Request ids executed 2+ times *by the same server process*.

        A re-execution on a different actor is the known failover cost:
        the client rebound to another replica after the first server
        died with the reply (at-most-once is per incarnation, like the
        reply cache itself).  Same-actor doubles are the unrecoverable
        bug the reply cache exists to prevent.
        """
        out = []
        for rid, execs in sorted(self.executions.items()):
            if len(execs) < 2:
                continue
            by_actor: Dict[str, int] = {}
            for e in execs:
                by_actor[e["actor"]] = by_actor.get(e["actor"], 0) + 1
            if any(n >= 2 for n in by_actor.values()):
                out.append((rid, execs))
        return out

    def summary(self) -> Dict[str, int]:
        doubles = self.double_executions()
        cross_actor = sum(
            1 for execs in self.executions.values()
            if len(execs) >= 2
            and len({e["actor"] for e in execs}) == len(execs))
        return {"executions": self.total,
                "request_ids": len(self.executions),
                "same_actor_doubles": len(doubles),
                "cross_actor_reexecutions": cross_actor}


class AtMostOnceMonitor(Monitor):
    """No non-idempotent request id executes twice on one server (PR 9).

    Under duplication, reordering, and retry-after-timeout the network
    hands a server the same call envelope more than once; the reply
    cache must collapse every re-arrival onto the single execution.  The
    monitor reads the kernel-resident :class:`EffectLedger` and flags
    any request id with two executions by the same actor (``ip/pid``).
    Cross-actor re-execution after a rebind is excused -- see
    :meth:`EffectLedger.double_executions`.  Falsifiable both ways: with
    ``OCSRuntime.dedup_enabled=False`` (the sabotage fixture) a hostile
    schedule makes exactly this monitor go red.
    """

    name = "at_most_once"

    def bind(self, cluster, injector, params, context) -> None:
        super().bind(cluster, injector, params, context)
        self.ledger = EffectLedger(cluster)
        cluster.kernel.effect_ledger = self.ledger
        self._reported: set = set()

    def check(self) -> List[Violation]:
        return self._sweep()

    def finish(self) -> List[Violation]:
        return self._sweep()

    def _sweep(self) -> List[Violation]:
        out: List[Violation] = []
        for rid, execs in self.ledger.double_executions():
            if rid in self._reported:
                continue
            self._reported.add(rid)
            times = ", ".join(f"{e['t']:.3f}@{e['actor']}" for e in execs)
            out.append(self._violation(
                f"request {rid[0]}#{rid[1]} ({execs[0]['method']}) "
                f"executed {len(execs)}x: {times}"))
        return out


def default_monitors() -> List[Monitor]:
    """The full invariant catalog, fresh instances."""
    return [CscPrimaryMonitor(), NsAgreementMonitor(),
            AuditConvergenceMonitor(), CacheCoherenceMonitor(),
            SettopServiceMonitor(), FutureLeakMonitor(),
            ExpiredWorkMonitor(), QueueBoundMonitor(),
            HbRaceMonitor(), ReplicaLagMonitor(),
            DurabilityMonitor(), AtMostOnceMonitor()]


class MonitorBus:
    """Runs every monitor on a cadence and collects violations.

    Violations are also emitted as ``chaos.violation`` trace events, so
    the run's digest distinguishes a clean run from a failing one.
    """

    def __init__(self, cluster: Cluster, injector: FaultInjector,
                 params: Params, context: Optional[dict] = None,
                 monitors: Optional[List[Monitor]] = None):
        self.cluster = cluster
        self.monitors = monitors if monitors is not None else default_monitors()
        self.violations: List[Violation] = []
        for monitor in self.monitors:
            monitor.bind(cluster, injector, params, context or {})

    def probe(self) -> int:
        """One periodic sweep; returns the cumulative violation count."""
        for monitor in self.monitors:
            self._record(monitor.check())
        return len(self.violations)

    def finish(self) -> int:
        """The final sweep after the quiesce."""
        for monitor in self.monitors:
            self._record(monitor.finish())
        return len(self.violations)

    def _record(self, found: List[Violation]) -> None:
        for violation in found:
            self.cluster.trace.emit("chaos", "violation",
                                    monitor=violation.monitor,
                                    detail=violation.detail)
            self.violations.append(violation)

    def monitor(self, name: str) -> Monitor:
        for m in self.monitors:
            if m.name == name:
                return m
        raise KeyError(name)
