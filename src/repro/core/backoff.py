"""Shared seeded jittered-exponential retry backoff.

Every retry loop in the system used to sleep a fixed 1.0 s between
attempts (``register_objects``, the bind/rebind paths).  Fixed delays
phase-lock: when a server reboot restarts twenty services at once, they
all retry at the same instants and hammer the name service in lockstep
-- the recovery-storm problem of paper section 8.2, but self-inflicted.

:class:`Backoff` is the one implementation those loops share.  Delays
grow geometrically from ``Params.retry_backoff_base`` by
``retry_backoff_multiplier`` up to ``retry_backoff_max``, each draw
jittered by ``+/- retry_backoff_jitter`` of itself from a *seeded*
stream, so two runs with the same seed retry at identical times (the
repo's byte-identical-trace invariant) while distinct services spread
out within a run.
"""

from __future__ import annotations

from typing import Optional

from repro.core.params import Params
from repro.sim.rand import SeededRandom


class Backoff:
    """One retry loop's delay state; create one per loop, reset on success."""

    def __init__(self, params: Params, rng: SeededRandom,
                 base: Optional[float] = None,
                 multiplier: Optional[float] = None,
                 max_delay: Optional[float] = None,
                 jitter: Optional[float] = None,
                 max_elapsed: Optional[float] = None):
        self.base = base if base is not None else params.retry_backoff_base
        self.multiplier = (multiplier if multiplier is not None
                           else params.retry_backoff_multiplier)
        self.max_delay = (max_delay if max_delay is not None
                          else params.retry_backoff_max)
        self.jitter = (jitter if jitter is not None
                       else params.retry_backoff_jitter)
        # Total-sleep budget: once the sum of returned delays reaches
        # this, next_delay() returns 0.0 and ``exhausted`` turns true.
        # A retry loop with a deadline must not sleep past it (PR 4
        # bugfix: loops used to overshoot their own budget).
        self.max_elapsed = max_elapsed
        self._rng = rng
        self.attempts = 0
        self.total_slept = 0.0

    def next_delay(self) -> float:
        """The delay to sleep before the next retry (advances the state).

        Clamped so the cumulative sum of delays never exceeds
        ``max_elapsed``; returns 0.0 once the budget is spent.
        """
        delay = min(self.base * (self.multiplier ** self.attempts),
                    self.max_delay)
        self.attempts += 1
        delay = jittered(self._rng, delay, self.jitter)
        if self.max_elapsed is not None:
            remaining = self.max_elapsed - self.total_slept
            if remaining <= 0:
                return 0.0
            delay = min(delay, remaining)
        self.total_slept += delay
        return delay

    @property
    def exhausted(self) -> bool:
        """True once the ``max_elapsed`` sleep budget is fully spent."""
        return (self.max_elapsed is not None
                and self.total_slept >= self.max_elapsed)

    def reset(self) -> None:
        """Back to the base delay (call after a successful attempt)."""
        self.attempts = 0
        self.total_slept = 0.0


def jittered(rng: SeededRandom, delay: float, fraction: float) -> float:
    """``delay`` spread uniformly over ``+/- fraction`` of itself.

    The one jitter recipe both the backoff helper and the rebinding
    proxy (:mod:`repro.core.rebind`) use, so "jittered" means the same
    distribution everywhere.
    """
    if fraction <= 0 or delay <= 0:
        return delay
    return rng.uniform(delay * (1.0 - fraction), delay * (1.0 + fraction))
