"""Cluster Service Controller (paper section 6.2).

"The CSC determines where to run services ... directs the SSC on each
machine to start and stop services as required.  At least two servers
run replicas of the CSC.  One replica is designated the primary ...  If
the master CSC crashes, one of the backups takes over.  This backup
discovers the cluster state by querying each SSC to determine what
services it is running" -- the stateless-recovery pattern again.

"The current implementation of the CSC is relatively primitive.  It
reads a static configuration from the database to determine which
services to run on each node" -- ours does exactly that: the
``config/placement`` table maps service name to the list of server IPs
that should run it.  Simple operator tools (:mod:`repro.core.control.tools`)
move services between nodes by editing that table through the CSC.
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.control.ssc import ssc_ref
from repro.core.rebind import RebindingProxy
from repro.core.replication import NotPrimary, PrimaryBackupBinder
from repro.idl import register_exception, register_interface
from repro.ocs.exceptions import ServiceUnavailable
from repro.ocs.runtime import CallContext
from repro.services.base import Service

register_interface("ClusterController", {
    "placement": (),
    "clusterState": (),
    "startServiceOn": ("service", "server_ip"),
    "stopServiceOn": ("service", "server_ip"),
    "moveService": ("service", "from_ip", "to_ip"),
    "serverStatus": (),
}, doc="Cluster Service Controller (section 6.2)",
   idempotent=("placement", "clusterState", "serverStatus"))


@register_exception
class BadPlacement(Exception):
    """Move/start named an unknown service or server."""


class ClusterServiceController(Service):
    service_name = "csc"

    def __init__(self, env, process):
        super().__init__(env, process)
        self._placement: Dict[str, List[str]] = {}
        self._server_up: Dict[str, bool] = {}
        self._down_since: Dict[str, float] = {}
        self._is_primary = False
        # The paper's stated future work (sections 6.3, 8.1): "Ultimately
        # we expect the CSC to be able to automatically restart services
        # on other servers after a machine failure, but this is not yet
        # implemented."  We implement it behind a flag, off by default to
        # match the deployed system.
        self.auto_reassign = bool(env.cluster.get("csc_auto_reassign", False))
        self.reassign_grace = float(env.cluster.get("csc_reassign_grace", 20.0))
        self.reassignments = 0

    async def start(self) -> None:
        self.ref = self.runtime.export(_CSCServant(self), "ClusterController")
        await self.register_objects([self.ref])
        self._db = RebindingProxy(self.runtime, self.names, "svc/db",
                                  self.params)
        self.binder = PrimaryBackupBinder(self, "svc/csc", self.ref,
                                          on_promote=self._on_promote,
                                          on_demote=self._on_demote)
        self.spawn_task(self.binder.run(), name="csc-binder").detach()

    @property
    def is_primary(self) -> bool:
        """Monitor probe: is this replica currently acting as primary?

        The chaos invariant "at most one CSC primary" reads this rather
        than poking ``_is_primary`` on internals.
        """
        return self._is_primary

    # -- primary duties ----------------------------------------------------

    def _on_promote(self):
        self._is_primary = True
        self.spawn_task(self._primary_loop(), name="csc-primary").detach()

    def _on_demote(self):
        self._is_primary = False

    async def _primary_loop(self) -> None:
        """Step 4 of section 6.3 + the periodic SSC ping."""
        await self._load_placement()
        await self._discover_cluster_state()
        while self._is_primary:
            await self._reconcile()
            await self.kernel.sleep(self.params.csc_ping_interval)

    async def _load_placement(self) -> None:
        while self._is_primary:
            try:
                config = await self._db.call("get", "config", "placement")
                self._placement = {svc: list(ips)
                                   for svc, ips in (config or {}).items()}
                return
            except ServiceUnavailable:
                await self.kernel.sleep(2.0)
            except Exception:  # noqa: BLE001 - missing table: empty placement
                self._placement = {}
                return

    async def _discover_cluster_state(self) -> None:
        """A promoted backup rebuilds state by querying each SSC."""
        for ip in self.env.cluster["server_ips"]:
            try:
                await self.runtime.invoke(ssc_ref(ip), "listServices", (),
                                          timeout=self.params.call_timeout)
                self._server_up[ip] = True
            except ServiceUnavailable:
                self._server_up[ip] = False
                # Start the reassignment grace clock at discovery: a
                # freshly promoted CSC has no idea how long the server
                # has already been down.
                self._down_since.setdefault(ip, self.kernel.now)

    async def _reconcile(self) -> None:
        """Ping every SSC; (re)issue start directives for its services."""
        for ip in self.env.cluster["server_ips"]:
            wanted = sorted(svc for svc, ips in self._placement.items()
                            if ip in ips)
            try:
                running = await self.runtime.invoke(
                    ssc_ref(ip), "listServices", (),
                    timeout=self.params.call_timeout)
                was_up = self._server_up.get(ip, False)
                self._server_up[ip] = True
                self._down_since.pop(ip, None)
                if not was_up:
                    self.emit("server_recovered", server=ip)
                for svc in wanted:
                    if svc not in running:
                        await self.runtime.invoke(
                            ssc_ref(ip), "startService", (svc,),
                            timeout=self.params.call_timeout)
            except ServiceUnavailable:
                if self._server_up.get(ip, True):
                    self.emit("server_unreachable", server=ip)
                    self._down_since[ip] = self.kernel.now
                self._server_up[ip] = False
        if self.auto_reassign:
            await self._reassign_orphans()

    async def _reassign_orphans(self) -> None:
        """Future-work extension: restart services whose every placed
        server has been down past the grace period on a survivor."""
        survivors = [ip for ip, up in self._server_up.items() if up]
        if not survivors:
            return
        now = self.kernel.now
        dead_long_enough = {
            ip for ip, up in self._server_up.items()
            if not up and now - self._down_since.get(ip, now) >= self.reassign_grace}
        for service, placed in list(self._placement.items()):
            if not placed:
                continue
            live_placed = [ip for ip in placed if self._server_up.get(ip)]
            if live_placed:
                continue
            if not all(ip in dead_long_enough for ip in placed):
                continue  # still inside the grace period
            target = survivors[self.reassignments % len(survivors)]
            self.emit("auto_reassign", service=service, to=target)
            self.reassignments += 1
            try:
                await self.start_service_on(service, target)
            except ServiceUnavailable:
                continue

    # -- directed operations ------------------------------------------------

    def _require_primary(self) -> None:
        if not self._is_primary:
            raise NotPrimary("this CSC replica is a backup")

    async def start_service_on(self, service: str, server_ip: str) -> None:
        self._require_primary()
        self._validate(service, server_ip)
        self._placement.setdefault(service, [])
        if server_ip not in self._placement[service]:
            self._placement[service].append(server_ip)
        await self._save_placement()
        await self.runtime.invoke(ssc_ref(server_ip), "startService",
                                  (service,), timeout=self.params.call_timeout)

    async def stop_service_on(self, service: str, server_ip: str) -> None:
        self._require_primary()
        self._validate(service, server_ip)
        if server_ip in self._placement.get(service, []):
            self._placement[service].remove(server_ip)
        await self._save_placement()
        try:
            await self.runtime.invoke(ssc_ref(server_ip), "stopService",
                                      (service,),
                                      timeout=self.params.call_timeout)
        except ServiceUnavailable:
            pass  # the server is down; placement is already updated

    async def move_service(self, service: str, from_ip: str,
                           to_ip: str) -> None:
        """Operator tool: reassign a service between nodes (section 8.1)."""
        await self.stop_service_on(service, from_ip)
        await self.start_service_on(service, to_ip)

    def _validate(self, service: str, server_ip: str) -> None:
        if server_ip not in self.env.cluster["server_ips"]:
            raise BadPlacement(f"unknown server {server_ip}")

    async def _save_placement(self) -> None:
        try:
            await self._db.call("put", "config", "placement", self._placement)
        except ServiceUnavailable:
            pass  # db temporarily down; in-memory placement still drives us


class _CSCServant:
    def __init__(self, svc: ClusterServiceController):
        self._svc = svc

    async def placement(self, ctx: CallContext):
        return {k: list(v) for k, v in self._svc._placement.items()}

    async def clusterState(self, ctx: CallContext):
        state = {}
        for ip in self._svc.env.cluster["server_ips"]:
            try:
                state[ip] = await self._svc.runtime.invoke(
                    ssc_ref(ip), "listServices", (),
                    timeout=self._svc.params.call_timeout)
            except ServiceUnavailable:
                state[ip] = None
        return state

    async def serverStatus(self, ctx: CallContext):
        return dict(self._svc._server_up)

    async def startServiceOn(self, ctx: CallContext, service: str,
                             server_ip: str):
        await self._svc.start_service_on(service, server_ip)

    async def stopServiceOn(self, ctx: CallContext, service: str,
                            server_ip: str):
        await self._svc.stop_service_on(service, server_ip)

    async def moveService(self, ctx: CallContext, service: str, from_ip: str,
                          to_ip: str):
        await self._svc.move_service(service, from_ip, to_ip)
