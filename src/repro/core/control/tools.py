"""Operator tools (paper sections 6.2, 8.1).

"There are simple tools that allow an operator to cause a service or
group of services to be stopped, started, or moved between nodes."
These drive the CSC primary through its IDL interface; they are what a
human operator runs after a server failure to reassign the
per-neighbourhood services that are not restarted automatically.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.naming.client import NameClient
from repro.core.params import Params
from repro.core.rebind import RebindingProxy
from repro.ocs.runtime import OCSRuntime


class OperatorConsole:
    """An operator session bound to the cluster's CSC primary."""

    def __init__(self, runtime: OCSRuntime, names: NameClient,
                 params: Optional[Params] = None):
        self._csc = RebindingProxy(runtime, names, "svc/csc",
                                   params or names.params)

    async def placement(self) -> Dict[str, List[str]]:
        return await self._csc.call("placement", timeout=15.0)

    async def cluster_state(self) -> Dict[str, Optional[List[str]]]:
        return await self._csc.call("clusterState", timeout=15.0)

    async def server_status(self) -> Dict[str, bool]:
        return await self._csc.call("serverStatus", timeout=15.0)

    async def start_service(self, service: str, server_ip: str) -> None:
        await self._csc.call("startServiceOn", service, server_ip,
                              timeout=15.0)

    async def stop_service(self, service: str, server_ip: str) -> None:
        await self._csc.call("stopServiceOn", service, server_ip,
                              timeout=15.0)

    async def move_service(self, service: str, from_ip: str,
                           to_ip: str) -> None:
        await self._csc.call("moveService", service, from_ip, to_ip,
                              timeout=15.0)
