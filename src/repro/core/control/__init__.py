"""Service controllers (paper section 6).

- :mod:`repro.core.control.ssc` -- the Server Service Controller: one per
  machine, started by init, (re)starting services and tracking their
  exported objects for the Resource Audit Service.
- :mod:`repro.core.control.csc` -- the Cluster Service Controller:
  primary/backup, distributes services across servers from the database
  configuration and pings SSCs.
- :mod:`repro.core.control.registry` -- the table of service factories a
  controller can start (the deployed system's service binaries).
"""

from repro.core.control.registry import ServiceEnv, ServiceRegistry
from repro.core.control.ssc import SSC_PORT, ServerServiceController, ssc_ref

__all__ = [
    "SSC_PORT",
    "ServerServiceController",
    "ServiceEnv",
    "ServiceRegistry",
    "ssc_ref",
]
