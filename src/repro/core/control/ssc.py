"""Server Service Controller (paper section 6.1).

One SSC runs on each server, started by init when the machine boots
(section 6.3 step 1).  It starts and stops services, restarts them on
failure, and -- through ``notifyReady`` / ``registerCallback`` -- tells
the Resource Audit Service which service objects are alive on this
machine.  Because the SSC ``wait()``s on its children, an SSC crash kills
every service it started; init restarts the SSC, which restarts them.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from repro.core.control.registry import ServiceEnv, ServiceRegistry
from repro.core.naming.client import NameClient, ns_root_ref
from repro.core.naming.errors import NamingError
from repro.idl import MethodDef, register_interface
from repro.ocs.admission import coalesce_gauges
from repro.ocs.exceptions import OCSError, ServiceUnavailable
from repro.ocs.objref import ANY_INCARNATION, ObjectRef
from repro.ocs.runtime import CallContext, OCSRuntime
from repro.sim.errors import CancelledError
from repro.sim.host import Host, Process

# The SSC is a per-server singleton restarted by init, so -- like the
# name service -- it lives at a well-known port and its bootstrap
# reference survives restarts.
SSC_PORT = 5001

register_interface("ServiceController", {
    "startService": ("name",),
    "stopService": ("name",),
    "listServices": (),
    # "The notifyReady operation accepts a process id plus a list of
    # objects and records an association between the listed objects and
    # the process id."
    "notifyReady": ("pid", "objects"),
    # "The registerCallback operation allows the caller to register a
    # callback object to be invoked whenever the set of live objects
    # changes."
    "registerCallback": ("callback",),
    "liveObjects": (),
    "ping": (),
    # start/stop flip desired-state and notifyReady/registerCallback
    # record associations; all are dedup'd so a retried start does not
    # double-bump restart accounting.
}, doc="Server Service Controller (section 6.1)",
   idempotent=("listServices", "liveObjects", "ping"))

register_interface("ObjectStatusCallback", {
    "objectsRegistered": MethodDef("objectsRegistered", ("objects",)),
    "objectsFailed": MethodDef("objectsFailed", ("objects",)),
}, doc="Live-object change notifications (sections 6.1, 7.2)")


def ssc_ref(ip: str) -> ObjectRef:
    """Bootstrap reference to the SSC on ``ip`` (survives SSC restarts)."""
    return ObjectRef(ip=ip, port=SSC_PORT, incarnation=ANY_INCARNATION,
                     type_id="ServiceController", object_id="")


class _ManagedService:
    def __init__(self, name: str):
        self.name = name
        self.desired = True
        self.process: Optional[Process] = None
        self.service: Any = None
        self.restarts = 0
        self.started_at = 0.0
        self.backoff = 0.0   # extra delay applied to crash-looping services


class ServerServiceController:
    """The ``ssc`` process: servant + child-service supervisor."""

    def __init__(self, process: Process, env: ServiceEnv,
                 registry: ServiceRegistry,
                 base_services: Optional[List[str]] = None):
        self.process = process
        self.env = env
        self.kernel = process.kernel
        self.registry = registry
        self.runtime = OCSRuntime(process, env.network, port=SSC_PORT)
        self.ref = self.runtime.export(_SSCServant(self), "ServiceController")
        self._managed: Dict[str, _ManagedService] = {}
        self._objects_by_pid: Dict[int, List[ObjectRef]] = {}
        self._pid_to_name: Dict[int, str] = {}
        self._callbacks: List[ObjectRef] = []
        # Services whose replication gauges last raised (wedged disk):
        # tracked so the stale transition is emitted once, not per scrape.
        self._stale_gauges: set = set()
        self._name_client = NameClient(self.runtime, env.ns_ip, env.params)
        self.base_services = list(base_services or [])
        self.process.create_task(self._startup(), name="ssc-startup").detach()
        self.process.create_task(self._load_report_loop(),
                                 name="ssc-load-report").detach()

    # -- lifecycle -------------------------------------------------------

    async def _startup(self) -> None:
        """Boot step 2: start base services, then advertise the SSC."""
        for name in self.base_services:
            self.start_service(name)
        await self._advertise()

    async def _advertise(self) -> None:
        """Bind svc/ssc/<ip> so the CSC can direct this server."""
        while True:
            try:
                await self._name_client.ensure_context("svc")
                await self._name_client.ensure_context(
                    "svc/ssc", replicated=True, selector="sameserver")
                try:
                    await self._name_client.bind(f"svc/ssc/{self.env.host.ip}",
                                                 self.ref)
                except NamingError:
                    # Stale binding from a previous incarnation: replace.
                    await self._name_client.unbind(f"svc/ssc/{self.env.host.ip}")
                    await self._name_client.bind(f"svc/ssc/{self.env.host.ip}",
                                                 self.ref)
                return
            except (NamingError, ServiceUnavailable, OCSError):
                await self.kernel.sleep(2.0)

    def start_service(self, name: str) -> None:
        """Start (or mark desired) the named service."""
        entry = self._managed.get(name)
        if entry is None:
            entry = _ManagedService(name)
            self._managed[name] = entry
        entry.desired = True
        if entry.process is not None and entry.process.alive:
            return
        self._spawn(entry)

    # A service that keeps dying right after start is crash-looping;
    # its restart delay doubles up to this cap so it cannot consume the
    # server (the paper's debugging era had plenty of these).
    CRASH_LOOP_WINDOW = 10.0
    MAX_RESTART_BACKOFF = 30.0

    def _spawn(self, entry: _ManagedService) -> None:
        factory = self.registry.lookup(entry.name)
        proc = self.env.host.spawn(entry.name, parent=self.process)
        entry.process = proc
        entry.started_at = self.kernel.now
        service = factory(self.env, proc)
        entry.service = service
        proc.create_task(self._run_service(service, proc),
                         name=f"run-{entry.name}").detach()
        proc.on_exit(lambda p: self._on_service_exit(entry, p))
        self.env.emit("ssc", "service_started", service=entry.name, pid=proc.pid)

    async def _run_service(self, service: Any, proc: Process) -> None:
        status = "exited"
        try:
            await service.run()
        except CancelledError:
            raise
        except Exception:  # noqa: BLE001 - a crashing service just exits
            status = "crashed"
        # The service's main returned (or raised): like a binary whose
        # main() ends, the process exits -- which is what the SSC's
        # wait() notices.
        if proc.alive:
            proc.exit(status=status)

    def _on_service_exit(self, entry: _ManagedService, proc: Process) -> None:
        # Tell the RAS (via callbacks) that this pid's objects are gone.
        objects = self._objects_by_pid.pop(proc.pid, [])
        self._pid_to_name.pop(proc.pid, None)
        if objects:
            self._fire_callbacks("objectsFailed", objects)
        if not self.process.alive:
            return  # SSC died with it; init will rebuild everything
        if entry.desired:
            self.env.emit("ssc", "service_failed", service=entry.name,
                          pid=proc.pid)
            lived = self.kernel.now - entry.started_at
            if lived < self.CRASH_LOOP_WINDOW:
                entry.backoff = min(max(entry.backoff * 2, 1.0),
                                    self.MAX_RESTART_BACKOFF)
            else:
                entry.backoff = 0.0
            self.kernel.call_later(
                self.env.params.ssc_restart_delay + entry.backoff,
                self._maybe_restart, entry)

    def _maybe_restart(self, entry: _ManagedService) -> None:
        if not self.process.alive or not entry.desired:
            return
        if entry.process is not None and entry.process.alive:
            return
        entry.restarts += 1
        self.env.emit("ssc", "service_restarted", service=entry.name,
                      restarts=entry.restarts)
        self._spawn(entry)

    def stop_service(self, name: str) -> None:
        entry = self._managed.get(name)
        if entry is None:
            return
        entry.desired = False
        if entry.process is not None and entry.process.alive:
            entry.process.kill(status="stopped by SSC")

    def running_services(self) -> List[str]:
        return sorted(name for name, e in self._managed.items()
                      if e.process is not None and e.process.alive)

    # -- aggregated load reporting (PR 5) ----------------------------------

    def _collect_load_reports(self):
        """Scrape managed services' gate gauges and replica bindings.

        In-process scraping is free (same machine, no wire messages --
        the same side door the chaos monitors use via process
        attachments); what used to be one report message *per gated
        service* per interval collapses into one batch per server.
        Returns ``(reports, entries)``: per-service gauge dicts for the
        RAS and ``(path, member, load)`` tuples for the Selectors.

        Replicated services (NS, db) also expose ``replication_gauges``
        -- their change-log cursor and lag behind the primary (PR 7) --
        which rides the same batch, so a wedged replica shows up in the
        RAS load feed with no extra wire traffic.
        """
        reports: Dict[str, dict] = {}
        entries: List[tuple] = []
        for name in sorted(self._managed):
            entry = self._managed[name]
            service = entry.service
            if (service is None or entry.process is None
                    or not entry.process.alive):
                continue
            report: Dict[str, object] = {}
            gate = getattr(getattr(service, "runtime", None), "admission", None)
            if gate is not None:
                report.update(gate.gauges())
            repl_gauges = getattr(service, "replication_gauges", None)
            if repl_gauges is not None:
                # A wedged replica disk must not wedge the whole batch:
                # the scrape is in-process (already bounded -- only the
                # batch *sends* below cross the wire, under their own
                # call deadlines), so the one failure mode is a raise,
                # which we convert into a gauges_stale transition and a
                # report that simply omits this service's repl gauges.
                try:
                    report.update(repl_gauges())
                except Exception:  # noqa: BLE001 - DiskWedged et al.
                    if name not in self._stale_gauges:
                        self._stale_gauges.add(name)
                        self.env.emit("ssc", "gauges_stale", service=name)
                else:
                    self._stale_gauges.discard(name)
            if not report:
                continue
            reports[name] = report
            if gate is None:
                continue
            load = gate.load()
            for binding in list(getattr(service, "_replica_bindings", [])):
                path = (f"{binding['parent']}/{binding['context']}"
                        if binding["parent"] else binding["context"])
                entries.append((path, binding["member"], load))
        return reports, entries

    async def _load_report_loop(self) -> None:
        """One coalesced load report per server per interval.

        The RAS gets every gated service's gauge dict in a single
        ``reportLoadBatch``; each name-service replica gets one batch of
        ``(path, member, load)`` selector entries (Selector state is
        per-replica, so every replica needs its own copy).  Best-effort
        throughout: a dead RAS or minority NS replica must not wedge the
        SSC.
        """
        params = self.env.params
        ras_ref: Optional[ObjectRef] = None
        ns_ips = (self.env.cluster.get("ns_replica_ips", [])
                  if self.env.cluster else [])
        while True:
            await self.kernel.sleep(params.load_report_interval)
            reports, entries = self._collect_load_reports()
            if not reports and not entries:
                continue
            self.env.emit("ssc", "load_report",
                          **coalesce_gauges(reports))
            if ras_ref is None:
                try:
                    ras_ref = await self._name_client.resolve(
                        f"svc/ras/{self.env.host.ip}")
                except (NamingError, ServiceUnavailable):
                    ras_ref = None
            if ras_ref is not None and reports:
                try:
                    await self.runtime.invoke(
                        ras_ref, "reportLoadBatch", (reports,),
                        timeout=params.ras_call_timeout)
                except (ServiceUnavailable, OCSError):
                    ras_ref = None
            if not entries:
                continue
            for ns_ip in ns_ips:
                try:
                    await self.runtime.invoke(
                        ns_root_ref(ns_ip, params.ns_port),
                        "reportLoadBatch", (entries,),
                        timeout=params.ras_call_timeout)
                except (ServiceUnavailable, OCSError):
                    continue

    # -- object tracking (the RAS feed) ------------------------------------

    def notify_ready(self, pid: int, objects: List[ObjectRef]) -> None:
        existing = self._objects_by_pid.setdefault(pid, [])
        fresh = [ref for ref in objects if ref not in existing]
        existing.extend(fresh)
        proc = self._find_process(pid)
        if proc is None or not proc.alive:
            # Registration raced with death: report straight back out.
            self._objects_by_pid.pop(pid, None)
            if fresh:
                self._fire_callbacks("objectsFailed", fresh)
            return
        if pid not in self._pid_to_name:
            self._pid_to_name[pid] = proc.name
            proc.on_exit(self._on_registered_process_exit)
        if fresh:
            self._fire_callbacks("objectsRegistered", fresh)

    def _on_registered_process_exit(self, proc: Process) -> None:
        # Covers processes that registered objects but were not started by
        # this SSC (the SSC can detect the failure of any local process).
        objects = self._objects_by_pid.pop(proc.pid, [])
        self._pid_to_name.pop(proc.pid, None)
        if objects and self.process.alive:
            self._fire_callbacks("objectsFailed", objects)

    def _find_process(self, pid: int) -> Optional[Process]:
        for proc in self.env.host.processes:
            if proc.pid == pid:
                return proc
        return None

    def live_objects(self) -> List[ObjectRef]:
        out: List[ObjectRef] = []
        for refs in self._objects_by_pid.values():
            out.extend(refs)
        return out

    def register_callback(self, callback: ObjectRef) -> List[ObjectRef]:
        """Record a callback; returns (and sends) the current live set."""
        if callback not in self._callbacks:
            self._callbacks.append(callback)
        live = self.live_objects()
        if live:
            self._fire_callbacks("objectsRegistered", live, only=callback)
        return live

    def _fire_callbacks(self, method: str, objects: List[ObjectRef],
                        only: Optional[ObjectRef] = None) -> None:
        if not self.process.alive:
            # The SSC died with (or before) the event; the restarted SSC
            # rebuilds live-object state as services re-register.
            return
        targets = [only] if only is not None else list(self._callbacks)
        for cb in targets:
            self.process.create_task(self._call_callback(cb, method, objects),
                                     name="ssc-callback").detach()

    async def _call_callback(self, cb: ObjectRef, method: str,
                             objects: List[ObjectRef]) -> None:
        try:
            await self.runtime.invoke(cb, method, (objects,),
                                      timeout=self.env.params.call_timeout)
        except ServiceUnavailable:
            if cb in self._callbacks:
                self._callbacks.remove(cb)
        except OCSError:
            pass


class _SSCServant:
    """Wire adapter for the ``ServiceController`` interface."""

    def __init__(self, ssc: ServerServiceController):
        self._ssc = ssc

    async def startService(self, ctx: CallContext, name: str):
        self._ssc.start_service(name)

    async def stopService(self, ctx: CallContext, name: str):
        self._ssc.stop_service(name)

    async def listServices(self, ctx: CallContext):
        return self._ssc.running_services()

    async def notifyReady(self, ctx: CallContext, pid: int, objects):
        self._ssc.notify_ready(pid, list(objects))

    async def registerCallback(self, ctx: CallContext, callback: ObjectRef):
        return self._ssc.register_callback(callback)

    async def liveObjects(self, ctx: CallContext):
        return self._ssc.live_objects()

    async def ping(self, ctx: CallContext):
        return {"host": self._ssc.env.host.name,
                "services": self._ssc.running_services()}


def install_init(host: Host, make_env: Callable[[], ServiceEnv],
                 registry: ServiceRegistry,
                 base_services: List[str]) -> ServerServiceController:
    """Wire up init on ``host``: start the SSC now, restart it if it dies,
    and start it again on every reboot (section 6.3 step 1).

    Returns the first SSC instance; later incarnations are reachable
    through :func:`ssc_ref`.
    """

    state = {"ssc": None}

    def start_ssc(_host=None) -> None:
        if not host.up:
            return
        proc = host.spawn("ssc")
        state["ssc"] = ServerServiceController(proc, make_env(), registry,
                                               base_services)
        proc.on_exit(lambda p: host.kernel.call_later(0.5, restart_ssc))

    def restart_ssc() -> None:
        # init restarts a crashed SSC ("it will be automatically restarted
        # by the IRIX init daemon") unless the whole host is down.
        if host.up and host.find_process("ssc") is None:
            start_ssc()

    host.add_boot_hook(lambda h: start_ssc())
    start_ssc()
    return state["ssc"]
