"""Service factories and the per-server environment handed to them.

The deployed system's SSC started service *binaries*; our equivalent is a
registry of factory callables.  A factory receives the
:class:`ServiceEnv` (everything a freshly exec'd process would find in
its environment: the host, the network, timing parameters, the local
name-service address) plus its new :class:`~repro.sim.host.Process`, and
returns an object with an async ``run()`` coroutine.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional

from repro.core.params import Params
from repro.net.network import Network
from repro.sim.host import Host, Process
from repro.sim.kernel import Kernel
from repro.sim.rand import SeededRandom
from repro.sim.trace import TraceLog

ServiceFactory = Callable[["ServiceEnv", Process], Any]


@dataclass
class ServiceEnv:
    """What a service process finds when it starts on a server."""

    host: Host
    network: Network
    params: Params
    ns_ip: str                      # local name-service replica address
    rng: SeededRandom
    trace: Optional[TraceLog] = None
    # Cluster-wide shared config the builder wants services to see
    # (e.g. the replica set for the name service, movie catalog paths).
    cluster: Dict[str, Any] = field(default_factory=dict)

    @property
    def kernel(self) -> Kernel:
        return self.host.kernel

    def emit(self, category: str, event: str, **fields: Any) -> None:
        if self.trace is not None:
            self.trace.emit(category, event, host=self.host.name, **fields)


class ServiceRegistry:
    """Name -> factory table shared by every controller in a cluster."""

    def __init__(self) -> None:
        self._factories: Dict[str, ServiceFactory] = {}

    def register(self, name: str, factory: ServiceFactory) -> None:
        if name in self._factories:
            raise ValueError(f"service {name!r} already registered")
        self._factories[name] = factory

    def lookup(self, name: str) -> ServiceFactory:
        if name not in self._factories:
            raise KeyError(f"no service registered as {name!r}")
        return self._factories[name]

    def names(self) -> list:
        return sorted(self._factories)

    def __contains__(self, name: str) -> bool:
        return name in self._factories
