"""Automatic client rebinding (paper section 8.2).

"When the client attempts to invoke an object from a failed service, the
object communication system raises an exception.  At this point, library
code in the client automatically returns to the name service to obtain
another object reference for the service."

The proxy also implements the paper's recovery-storm mitigation: "If
performance difficulties arise, we can modify the library routine to
back off when repeating requests for a new service object" -- enabled by
setting ``Params.rebind_backoff`` (experiment E6 measures both modes).

PR 4 adds overload awareness.  Calls may carry an absolute ``deadline``
that bounds the whole rebind loop (every retry sleep and per-attempt
timeout is clamped to the remaining budget), and a replica that sheds
with :class:`Overloaded` is put on a seeded, jittered client-side
cooldown: the reference is dropped so the Selector steers the retry at
a different replica, and if resolution hands back a replica still in
cooldown the proxy fails fast so applications can degrade instead of
camping on a saturated server.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

from repro.core.backoff import jittered
from repro.core.naming.client import NameClient
from repro.core.naming.errors import NamingError
from repro.core.params import Params
from repro.ocs.exceptions import DeadlineExceeded, Overloaded, ServiceUnavailable
from repro.ocs.objref import ObjectRef
from repro.ocs.runtime import OCSRuntime
from repro.sim.rand import SeededRandom


class RebindError(ServiceUnavailable):
    """The service stayed unavailable past the caller's deadline."""


class RebindingProxy:
    """A service handle that survives replica failure and relocation.

    The first call resolves the service name; later calls reuse the
    cached reference ("The AM only contacts the name service for a
    reference to the RDS the first time", section 3.4.2).  On
    :class:`ServiceUnavailable` the reference is dropped and re-resolved,
    transparently to the caller.
    """

    def __init__(self, runtime: OCSRuntime, names: NameClient, name: str,
                 params: Optional[Params] = None,
                 rng: Optional[SeededRandom] = None,
                 give_up_after: Optional[float] = None):
        self._runtime = runtime
        self._names = names
        self._name = name
        self._params = params or names.params
        self._rng = rng or SeededRandom(0)
        # ``None`` means "use the params budget".  Either way the value
        # feeds the loop budget in call(), so every cooldown/backoff
        # sleep is clamped to it even when ``deadline`` is None (the
        # PR 5 regression fix: a params-supplied give_up_after used to
        # be advisory text in the final error only).
        if give_up_after is None:
            give_up_after = self._params.rebind_give_up_after
        self._give_up_after = give_up_after
        self._ref: Optional[ObjectRef] = None
        # Shed replicas under client-side cooldown: endpoint -> (until,
        # the Overloaded that put it there).  Endpoint, not ObjectRef:
        # a re-resolve returns a fresh ref to the same saturated server.
        self._cooldowns: Dict[Tuple[str, int], Tuple[float, Overloaded]] = {}
        self.rebinds = 0
        self.resolve_calls = 0
        self.sheds_seen = 0

    @property
    def ref(self) -> Optional[ObjectRef]:
        return self._ref

    def invalidate(self) -> None:
        """Drop the cached reference (e.g. after a data-path stall)."""
        self._drop_ref()

    def _drop_ref(self) -> None:
        """Drop our ref AND report it bad to the shared binding cache.

        Without the report the host's BindingCache would hand the same
        dead/shedding ref straight back on the next resolve and the
        rebind loop could never make progress (coherence by exception,
        PR 5).  The ref match inside invalidate() keeps a late failure
        report from evicting a binding another component already
        refreshed.
        """
        if self._ref is not None:
            invalidate = getattr(self._names, "invalidate", None)
            if invalidate is not None:
                invalidate(self._name, self._ref)
        self._ref = None

    def _cooling(self, ref: ObjectRef) -> Optional[Overloaded]:
        """The Overloaded that put ``ref``'s endpoint on cooldown, if live."""
        entry = self._cooldowns.get((ref.ip, ref.port))
        if entry is None:
            return None
        until, err = entry
        if self._runtime.kernel.now >= until:
            del self._cooldowns[(ref.ip, ref.port)]
            return None
        return err

    def _note_shed(self, ref: ObjectRef, err: Overloaded) -> None:
        floor = self._params.overload_cooldown_floor
        cooldown = jittered(self._rng, max(err.retry_after, floor),
                            self._params.overload_cooldown_jitter)
        self._cooldowns[(ref.ip, ref.port)] = (
            self._runtime.kernel.now + cooldown, err)

    async def call(self, method: str, *args: Any,
                   timeout: Optional[float] = None,
                   deadline: Optional[float] = None) -> Any:
        kernel = self._runtime.kernel
        budget = kernel.now + self._give_up_after
        if deadline is not None:
            budget = min(budget, deadline)
        call_timeout = timeout or self._params.call_timeout
        backoff = self._params.rebind_backoff
        last_error: Optional[Exception] = None
        # One request id for the whole logical call: every retry below
        # (including retry-after-CallTimeout, which lands in the
        # ServiceUnavailable arm) re-issues under the same identity, so
        # a server that already executed a timed-out attempt replays its
        # cached reply instead of executing the op a second time.
        request_id = self._runtime.next_request_id()
        while kernel.now < budget:
            if self._ref is None:
                try:
                    self.resolve_calls += 1
                    self._ref = await self._names.resolve(self._name)
                except (NamingError, ServiceUnavailable) as err:
                    # Not bound (yet/anymore): a replica will rebind soon.
                    last_error = err
                    await kernel.sleep(self._clamped(
                        self._retry_delay(backoff), budget))
                    continue
                cooling = self._cooling(self._ref)
                if cooling is not None:
                    # The Selector handed back a replica we know is
                    # shedding.  Fail fast with the server's own signal
                    # so the application can degrade instead of camping
                    # on a saturated pool for the whole budget.  (Keep
                    # the cache entry: the replica is alive, merely
                    # cooling on *this* client.)
                    self._ref = None
                    raise cooling
            try:
                return await self._runtime.invoke(
                    self._ref, method, args,
                    timeout=min(call_timeout, budget - kernel.now),
                    deadline=deadline, request_id=request_id)
            except Overloaded as err:
                # Alive but saturated: cool this endpoint down and let
                # the name service steer the retry at another replica.
                self.sheds_seen += 1
                last_error = err
                self._note_shed(self._ref, err)
                self._drop_ref()
                self.rebinds += 1
                await kernel.sleep(self._clamped(
                    self._retry_delay(backoff), budget))
            except DeadlineExceeded:
                # The budget itself is spent; rebinding cannot help.
                raise
            except ServiceUnavailable as err:
                # The reference went stale: rebind through the name service.
                last_error = err
                self._drop_ref()
                self.rebinds += 1
                if backoff > 0:
                    await kernel.sleep(self._clamped(
                        self._retry_delay(backoff), budget))
        if deadline is not None and budget >= deadline:
            raise DeadlineExceeded(
                f"{self._name}.{method} deadline spent after "
                f"{self.rebinds} rebinds: {last_error}")
        raise RebindError(
            f"{self._name} unavailable for {self._give_up_after}s: {last_error}")

    def _clamped(self, delay: float, budget: float) -> float:
        """Never sleep past the loop's own budget (PR 4 backoff bugfix)."""
        return max(0.0, min(delay, budget - self._runtime.kernel.now))

    def _retry_delay(self, backoff: float) -> float:
        if backoff <= 0:
            return 0.5  # bare re-resolve pacing; the storm case
        # Jittered backoff spreads the re-resolve herd (section 8.2);
        # same jitter recipe as every other retry loop (core/backoff.py).
        return jittered(self._rng, backoff, 0.5)

    def __getattr__(self, name: str):
        if name.startswith("_"):
            raise AttributeError(name)

        async def call(*args: Any, timeout: Optional[float] = None,
                       deadline: Optional[float] = None):
            return await self.call(name, *args, timeout=timeout,
                                   deadline=deadline)

        call.__name__ = name
        return call
