"""Automatic client rebinding (paper section 8.2).

"When the client attempts to invoke an object from a failed service, the
object communication system raises an exception.  At this point, library
code in the client automatically returns to the name service to obtain
another object reference for the service."

The proxy also implements the paper's recovery-storm mitigation: "If
performance difficulties arise, we can modify the library routine to
back off when repeating requests for a new service object" -- enabled by
setting ``Params.rebind_backoff`` (experiment E6 measures both modes).
"""

from __future__ import annotations

from typing import Any, Optional

from repro.core.backoff import jittered
from repro.core.naming.client import NameClient
from repro.core.naming.errors import NamingError
from repro.core.params import Params
from repro.ocs.exceptions import ServiceUnavailable
from repro.ocs.objref import ObjectRef
from repro.ocs.runtime import OCSRuntime
from repro.sim.rand import SeededRandom


class RebindError(ServiceUnavailable):
    """The service stayed unavailable past the caller's deadline."""


class RebindingProxy:
    """A service handle that survives replica failure and relocation.

    The first call resolves the service name; later calls reuse the
    cached reference ("The AM only contacts the name service for a
    reference to the RDS the first time", section 3.4.2).  On
    :class:`ServiceUnavailable` the reference is dropped and re-resolved,
    transparently to the caller.
    """

    def __init__(self, runtime: OCSRuntime, names: NameClient, name: str,
                 params: Optional[Params] = None,
                 rng: Optional[SeededRandom] = None,
                 give_up_after: float = 60.0):
        self._runtime = runtime
        self._names = names
        self._name = name
        self._params = params or names.params
        self._rng = rng or SeededRandom(0)
        self._give_up_after = give_up_after
        self._ref: Optional[ObjectRef] = None
        self.rebinds = 0
        self.resolve_calls = 0

    @property
    def ref(self) -> Optional[ObjectRef]:
        return self._ref

    def invalidate(self) -> None:
        """Drop the cached reference (e.g. after a data-path stall)."""
        self._ref = None

    async def call(self, method: str, *args: Any,
                   timeout: Optional[float] = None) -> Any:
        kernel = self._runtime.kernel
        deadline = kernel.now + self._give_up_after
        call_timeout = timeout or self._params.call_timeout
        backoff = self._params.rebind_backoff
        last_error: Optional[Exception] = None
        while kernel.now < deadline:
            if self._ref is None:
                try:
                    self.resolve_calls += 1
                    self._ref = await self._names.resolve(self._name)
                except (NamingError, ServiceUnavailable) as err:
                    # Not bound (yet/anymore): a replica will rebind soon.
                    last_error = err
                    await kernel.sleep(self._retry_delay(backoff))
                    continue
            try:
                return await self._runtime.invoke(self._ref, method, args,
                                                  timeout=call_timeout)
            except ServiceUnavailable as err:
                # The reference went stale: rebind through the name service.
                last_error = err
                self._ref = None
                self.rebinds += 1
                if backoff > 0:
                    await kernel.sleep(self._retry_delay(backoff))
        raise RebindError(
            f"{self._name} unavailable for {self._give_up_after}s: {last_error}")

    def _retry_delay(self, backoff: float) -> float:
        if backoff <= 0:
            return 0.5  # bare re-resolve pacing; the storm case
        # Jittered backoff spreads the re-resolve herd (section 8.2);
        # same jitter recipe as every other retry loop (core/backoff.py).
        return jittered(self._rng, backoff, 0.5)

    def __getattr__(self, name: str):
        if name.startswith("_"):
            raise AttributeError(name)

        async def call(*args: Any, timeout: Optional[float] = None):
            return await self.call(name, *args, timeout=timeout)

        call.__name__ = name
        return call
