"""System timing parameters, defaulting to the paper's deployed values.

Section 9.7 names the three parameters that bound primary/backup
fail-over time and gives their Orlando settings:

    "Backup retries bind every 10 seconds
     Name service polls RAS every 10 seconds
     RAS polls other RASs every 5 seconds
     This gives a maximum fail over time of 25 seconds."

Experiment E2 sweeps these; everything else reads them from one
:class:`Params` instance owned by the scenario.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Tuple


@dataclass
class Params:
    # -- the section 9.7 fail-over parameters --------------------------
    backup_bind_retry: float = 10.0   # backup retries bind into name space
    ns_audit_poll: float = 10.0       # name service polls its local RAS
    ras_peer_poll: float = 5.0        # RAS polls RAS instances on peers

    # -- name service replication (section 4.6) ------------------------
    ns_heartbeat: float = 2.0         # master -> slave liveness beacon
    ns_election_timeout: Tuple[float, float] = (4.0, 8.0)  # randomized
    ns_port: int = 5000               # well-known bootstrap port

    # -- resource audit -------------------------------------------------
    ras_call_timeout: float = 2.0     # peer poll RPC deadline
    ras_client_poll: float = 10.0     # library checkStatus cadence (MMS)

    # -- settop liveness (Settop Manager) --------------------------------
    settop_heartbeat: float = 5.0
    settop_dead_after: float = 15.0   # missed heartbeats before "down"

    # -- service control (section 6) -------------------------------------
    ssc_restart_delay: float = 1.0    # backoff before restarting a service
    csc_ping_interval: float = 5.0    # CSC pings each SSC

    # -- client library ----------------------------------------------------
    rebind_backoff: float = 0.0       # 0 = immediate re-resolve (section 8.2)
    call_timeout: float = 3.0
    # Total rebind budget when the caller does not pass an explicit
    # ``give_up_after``: every cooldown/backoff sleep inside
    # RebindingProxy.call() is clamped to this budget even with
    # ``deadline=None`` (PR 5 regression fix).
    rebind_give_up_after: float = 60.0

    # -- population scale (PR 5, paper sections 5.1 / 9.6) -----------------
    # Per-host binding cache: resolve once, reuse the ref until a use
    # raises StaleReference/InvalidObjectReference or the replica sheds.
    # Off = every resolve() is a name-service round trip (the E15
    # uncached control row).
    binding_cache: bool = True

    # -- retry backoff (core/backoff.py) ---------------------------------
    # Start-up races (notifyReady before the SSC listens, bind before the
    # name service elects) retry through one shared jittered-exponential
    # helper instead of ad-hoc sleep(1.0) loops, so a restart storm of N
    # services spreads its retries instead of phase-locking.
    retry_backoff_base: float = 1.0        # first retry delay (seconds)
    retry_backoff_multiplier: float = 2.0  # growth per failed attempt
    retry_backoff_max: float = 8.0         # delay cap
    retry_backoff_jitter: float = 0.25     # +/- fraction drawn per retry

    # -- overload control (PR 4, paper section 5.1) -----------------------
    # Per-service admission gate: at most admission_max_inflight servant
    # executions with admission_max_queue calls waiting; beyond that the
    # call is shed with Overloaded(retry_after=admission_retry_after).
    # Sized so healthy-cluster workloads (48-settop boot storms, busy
    # evenings) never shed; only genuine surges and slow consumers trip
    # the gate.
    admission_max_inflight: int = 16
    admission_max_queue: int = 64
    admission_retry_after: float = 2.0     # server's cool-down hint
    overload_cooldown_floor: float = 0.5   # min client-side replica cooldown
    overload_cooldown_jitter: float = 0.5  # +/- fraction on the cooldown
    load_report_interval: float = 5.0      # gate gauges -> RAS + Selectors
    shed_load_level: float = 1.0           # selector skips members at >= this
    surge_p99_bound: float = 10.0          # E14 acceptance: p99 open latency
    degraded_bitrate_fraction: float = 0.25  # low-bitrate catalog fallback
    # A viewer-facing call gives up (and the app degrades) after this
    # long: the section 3 responsiveness discipline -- a TV viewer will
    # not stare at a frozen screen while a proxy retries for a minute.
    interactive_deadline: float = 8.0

    # -- happens-before instrumentation (repro.analysis.hb) ---------------
    # Emit ``hb.*`` trace events (message send/recv edges, shared-state
    # writes) so the vector-clock race detector can audit the run.  Off
    # by default: the emissions add trace lines, so golden-digest runs
    # must not see them.
    hb_trace: bool = False

    # -- replication change log (PR 7, devpi-style log shipping) -----------
    # Entries kept in the on-disk ChangeLog after compaction.  A replica
    # whose cursor falls more than this many updates behind the primary
    # must take the snapshot+tail fallback instead of the O(gap)
    # incremental catch-up.
    changelog_retain: int = 512
    # Anti-entropy cadence: a db backup polls the primary's change log
    # on this interval (devpi's replica poll), so a push missed during a
    # partition is repaired even if no further write ever arrives.  The
    # NS needs no poll -- its heartbeats already carry the master seq.
    db_replication_poll: float = 10.0
    # Chaos monitor bound: how long a live replica may trail its primary's
    # change-log sequence before ``replica_lag_bounded`` trips.  Sized to
    # cover one anti-entropy poll plus the catch-up RPC with slack.
    replica_lag_bound: float = 30.0

    # -- storage fault model (PR 8, repro.sim.host.Disk) -------------------
    # Arm the write barrier on every host disk at build time: writes
    # buffer until sync() and a host crash drops the unsynced buffer
    # (power-failure semantics).  Off by default: the barrier itself
    # emits nothing, but golden-digest runs should exercise the same
    # always-durable storage they were recorded against.  Chaos
    # schedules usually arm it per-disk via the disk_lose_unsynced /
    # disk_torn_write faults instead of flipping this globally.
    disk_write_barrier: bool = False
    # Primaries/masters sync() their change log to the durable image
    # *before* acknowledging a write.  This is the durability monitor's
    # falsifiability knob: with the barrier armed and this off, a crash
    # of the acking primary loses acknowledged writes and the monitor
    # must fire (tests/fixtures/sabotage.py).
    ack_after_sync: bool = True

    # -- chaos engine (repro.chaos) ---------------------------------------
    chaos_monitor_interval: float = 5.0    # invariant-monitor probe cadence
    chaos_audit_slack: float = 45.0        # grace beyond the audit polls
    chaos_settle_slack: float = 60.0       # quiesce beyond 3x max_failover

    @property
    def chaos_audit_bound(self) -> float:
        """How long a dead binding may linger before the monitor trips.

        One name-service audit poll plus one RAS peer poll is the paper's
        detection path (section 4.7); the slack absorbs call timeouts and
        the re-audit after an election.
        """
        return self.ns_audit_poll + self.ras_peer_poll + self.chaos_audit_slack

    # -- media -------------------------------------------------------------
    movie_bitrate_bps: float = 3_000_000   # MPEG-1/2 era CBR stream
    stream_chunk_seconds: float = 1.0      # MDS delivery granularity
    mds_disk_streams: int = 40             # per-server disk stream budget

    # -- resource limits (section 7.3) ---------------------------------------
    # "A settop client is only allowed to open a certain number of
    # network connections and audio/video streams.  If the settop
    # attempts to acquire more resources, either its request is denied or
    # one of the previously allocated resources is freed."  Both of the
    # paper's policies are available.
    max_connections_per_settop: int = 2
    connection_limit_policy: str = "deny"   # "deny" | "evict"
    # Resource accounting (section 7.3 names it as needed future work:
    # "accounting is needed both for discovering buggy clients and for
    # charging properly for resource usage") -- implemented extension.
    resource_accounting: bool = True

    extra: dict = field(default_factory=dict)

    @property
    def max_failover(self) -> float:
        """The paper's worst-case primary/backup fail-over bound."""
        return self.backup_bind_retry + self.ns_audit_poll + self.ras_peer_poll

    def with_overrides(self, **kwargs) -> "Params":
        return replace(self, **kwargs)
