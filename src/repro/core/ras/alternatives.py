"""The rejected resource-recovery designs of paper section 7.1.

The paper considered four mechanisms before choosing the RAS:

1. **duration time-outs** -- "The service that allocates a resource
   estimates how long it will be needed, and revokes the allocation when
   that time is exceeded. ... We found that it was too conservative":
   resources held by crashed clients leak until the generous estimate
   expires, and long-running healthy clients get cut off.
2. **short leases** -- "Resources are only granted for short periods of
   time.  It is up to the client to periodically reallocate. ... We
   discarded this approach because of concerns about scaling": message
   load grows with clients x resources / lease interval.
3. **per-service client tracking** -- every service pings the clients it
   granted resources to; message load grows with outstanding grants.
4. **the RAS** -- per-server audit replicas exchanging
   O(servers^2 / poll) messages regardless of client count.

Experiment E3 instantiates all four against the same synthetic
allocation workload and counts messages and leaked resource-seconds.
These classes implement the mechanisms; the benchmark provides the
workload.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.sim.kernel import Kernel


@dataclass
class RecoveryStats:
    """What each mechanism is judged on."""

    messages: int = 0                  # network messages the mechanism cost
    reclaimed: int = 0                 # resources recovered after failures
    false_revocations: int = 0         # healthy clients cut off
    leak_seconds: float = 0.0          # sum over resources of (reclaim - death)
    outstanding: int = 0

    def summary(self) -> dict:
        return {"messages": self.messages, "reclaimed": self.reclaimed,
                "false_revocations": self.false_revocations,
                "leak_seconds": round(self.leak_seconds, 1),
                "outstanding": self.outstanding}


@dataclass
class _Grant:
    client: str
    resource: str
    granted_at: float
    died_at: Optional[float] = None    # set by the workload on client crash
    lease_expires: float = 0.0
    estimated_duration: float = 0.0


class RecoveryMechanism:
    """Common bookkeeping: grants, client death, reclamation accounting."""

    name = "abstract"

    def __init__(self, kernel: Kernel):
        self.kernel = kernel
        self.stats = RecoveryStats()
        self._grants: Dict[str, _Grant] = {}
        self._live_clients: Dict[str, bool] = {}

    # -- workload-facing API -----------------------------------------------

    def grant(self, client: str, resource: str, estimated_duration: float) -> None:
        self._live_clients[client] = True
        self._grants[resource] = _Grant(
            client=client, resource=resource, granted_at=self.kernel.now,
            estimated_duration=estimated_duration)
        self.stats.outstanding += 1

    def release(self, resource: str) -> None:
        """Healthy client explicitly releases (the common case)."""
        if self._grants.pop(resource, None) is not None:
            self.stats.outstanding -= 1

    def client_crashed(self, client: str) -> None:
        self._live_clients[client] = False
        for grant in self._grants.values():
            if grant.client == client and grant.died_at is None:
                grant.died_at = self.kernel.now

    def client_alive(self, client: str) -> bool:
        return self._live_clients.get(client, False)

    def _reclaim(self, resource: str, *, forced_on_live_client: bool) -> None:
        grant = self._grants.pop(resource, None)
        if grant is None:
            return
        self.stats.outstanding -= 1
        if forced_on_live_client and grant.died_at is None:
            self.stats.false_revocations += 1
            return
        self.stats.reclaimed += 1
        if grant.died_at is not None:
            self.stats.leak_seconds += self.kernel.now - grant.died_at

    def run(self, until: float) -> None:
        """Drive the mechanism's periodic behaviour up to ``until``."""
        raise NotImplementedError

    def grants_of(self, client: str) -> List[str]:
        return [r for r, g in self._grants.items() if g.client == client]


class DurationTimeout(RecoveryMechanism):
    """Alternative 1: revoke when the estimated duration expires."""

    name = "duration-timeout"

    def __init__(self, kernel: Kernel, slack: float = 2.0):
        super().__init__(kernel)
        # "giving the client ample time" -- revoke at slack x estimate.
        self.slack = slack

    def run(self, until: float) -> None:
        # No messages at all -- the cost is leakage and false revocations.
        for resource, grant in list(self._grants.items()):
            deadline = grant.granted_at + grant.estimated_duration * self.slack
            if deadline <= until:
                self._reclaim(resource,
                              forced_on_live_client=grant.died_at is None)


class ShortLease(RecoveryMechanism):
    """Alternative 2: clients renew every ``lease`` seconds or lose it."""

    name = "short-lease"

    def __init__(self, kernel: Kernel, lease: float = 10.0):
        super().__init__(kernel)
        self.lease = lease
        self._last_renewal: Dict[str, float] = {}

    def grant(self, client: str, resource: str, estimated_duration: float) -> None:
        super().grant(client, resource, estimated_duration)
        self._last_renewal[resource] = self.kernel.now
        self.stats.messages += 1  # the grant request itself

    def run(self, until: float) -> None:
        now = self.kernel.now
        for resource, grant in list(self._grants.items()):
            # Live clients renew on schedule; each renewal is a message
            # (plus its reply).
            last = self._last_renewal.get(resource, grant.granted_at)
            while last + self.lease <= until:
                last += self.lease
                if grant.died_at is not None and grant.died_at <= last:
                    self._reclaim(resource, forced_on_live_client=False)
                    break
                self.stats.messages += 2  # renewal request + ack
            else:
                self._last_renewal[resource] = last
                continue


class PerServiceTracking(RecoveryMechanism):
    """Alternative 3: each granting service pings its clients directly."""

    name = "per-service-tracking"

    def __init__(self, kernel: Kernel, ping_interval: float = 5.0,
                 services: int = 1):
        super().__init__(kernel)
        self.ping_interval = ping_interval
        # Several services each track their own clients independently;
        # the same client gets pinged once per service that granted to it.
        self.services = services
        self._next_ping = 0.0

    def run(self, until: float) -> None:
        while self._next_ping <= until:
            now = self._next_ping
            # One ping (+reply from live clients) per client per service
            # with outstanding grants.
            clients = {g.client for g in self._grants.values()}
            for client in sorted(clients):
                self.stats.messages += 1  # ping
                if self.client_alive(client):
                    self.stats.messages += 1  # pong
                else:
                    for resource in self.grants_of(client):
                        grant = self._grants[resource]
                        if grant.died_at is not None and grant.died_at <= now:
                            self._reclaim(resource, forced_on_live_client=False)
            self._next_ping += self.ping_interval


class RASStyle(RecoveryMechanism):
    """Alternative 4 (chosen): per-server RAS replicas poll each other.

    Message cost is the peer-poll mesh -- independent of how many clients
    or resources exist -- plus one local checkStatus per granting service
    per poll (local, but counted as a message for comparability with the
    paper's "services contact the RAS on their local machine").
    """

    name = "ras"

    def __init__(self, kernel: Kernel, servers: int = 3,
                 peer_poll: float = 5.0, client_poll: float = 10.0,
                 granting_services: int = 1):
        super().__init__(kernel)
        self.servers = servers
        self.peer_poll = peer_poll
        self.client_poll = client_poll
        self.granting_services = granting_services
        self._next_peer = 0.0
        self._next_client = 0.0
        # Detection pipeline: a death is visible to the granting service
        # only after a peer poll AND the service's own checkStatus poll.
        self._detected: Dict[str, float] = {}

    def run(self, until: float) -> None:
        while min(self._next_peer, self._next_client) <= until:
            if self._next_peer <= self._next_client:
                now = self._next_peer
                # Full mesh: each server polls every other server's RAS
                # (request + reply).
                self.stats.messages += self.servers * (self.servers - 1) * 2
                for client, alive in self._live_clients.items():
                    if not alive and client not in self._detected:
                        self._detected[client] = now
                self._next_peer += self.peer_poll
            else:
                now = self._next_client
                # Each granting service asks its local RAS (loopback).
                self.stats.messages += self.granting_services
                for resource in list(self._grants):
                    grant = self._grants[resource]
                    detected = self._detected.get(grant.client)
                    if detected is not None and detected <= now:
                        self._reclaim(resource, forced_on_live_client=False)
                self._next_client += self.client_poll


def make_all(kernel: Kernel, servers: int = 3,
             granting_services: int = 1) -> List[RecoveryMechanism]:
    """The section 7.1 line-up, with the paper's parameter choices."""
    return [
        DurationTimeout(kernel),
        ShortLease(kernel),
        PerServiceTracking(kernel, services=granting_services),
        RASStyle(kernel, servers=servers,
                 granting_services=granting_services),
    ]
