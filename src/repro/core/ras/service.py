"""The RAS replica process (paper section 7.2).

Status sources, exactly as the paper lists them:

1. settops: periodic polls of the Settop Manager;
2. local service objects: callbacks from the local SSC (chosen over
   pinging because single-threaded services could not answer pings in
   time);
3. remote service objects: periodic polls of the RAS instance on the
   object's server.

Every ``checkStatus`` answers from cache immediately ("any call to the
RAS returns immediately and does not block"), recording unknown entities
for future monitoring -- which is also how a restarted RAS rebuilds its
state from scratch.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Union

from repro.core.naming.errors import NamingError
from repro.idl import register_interface
from repro.net.address import is_settop_ip, neighborhood_of
from repro.ocs.exceptions import (
    CommFailure,
    InvalidObjectReference,
    ServiceUnavailable,
)
from repro.ocs.objref import ObjectRef
from repro.ocs.runtime import CallContext
from repro.services.base import Service

register_interface("RAS", {
    # "The RAS object provides a single operation, checkStatus, which
    # accepts a list of service and settop objects and returns the status
    # of each."
    "checkStatus": ("entities",),
    "watchedCounts": (),
    # PR 4: services with admission gates push their load/queue gauges
    # here so operators (and the chaos monitors) can read saturation off
    # the audit service the paper already routes status through.
    "reportLoad": ("service", "gauges"),
    # PR 5: the SSC coalesces every gated service's gauges into one
    # batch per server per load_report_interval -- O(servers) report
    # messages instead of O(services).
    "reportLoadBatch": ("reports",),
    "loadGauges": (),
    # Status probes and absolute gauge upserts, all safe to re-run.
}, doc="Resource Audit Service (section 7.2)",
   idempotent=("checkStatus", "watchedCounts", "reportLoad",
               "reportLoadBatch", "loadGauges"))

Entity = Union[str, ObjectRef]   # settop IP string, or a service object ref

ALIVE = "alive"
DEAD = "dead"
UNKNOWN = "unknown"


class ResourceAuditService(Service):
    service_name = "ras"

    def __init__(self, env, process):
        super().__init__(env, process)
        # Source 2: local service objects, fed by SSC callbacks.
        self._local_live: set = set()
        self._ssc_synced = False
        # Source 3: remote service objects, fed by peer RAS polls.
        self._remote_status: Dict[ObjectRef, str] = {}
        self._peer_refs: Dict[str, Optional[ObjectRef]] = {}
        # Source 1: settops, fed by Settop Manager polls.
        self._settop_status: Dict[str, str] = {}
        self._settopmgr_refs: Dict[int, Optional[ObjectRef]] = {}
        # PR 4: load/queue gauges pushed by local admission-gated
        # services, keyed by service name.
        self._load_gauges: Dict[str, dict] = {}
        # Metrics for experiments E3/E9.
        self.peer_polls_sent = 0
        self.checkstatus_served = 0

    async def start(self) -> None:
        self.ref = self.runtime.export(_RASServant(self), "RAS")
        callback_ref = self.runtime.export(_SSCCallback(self),
                                           "ObjectStatusCallback",
                                           object_id="callback")
        await self.register_objects([self.ref])
        await self.bind_as_replica("ras", self.host.ip, self.ref,
                                   selector="sameserver")
        await self._register_with_ssc(callback_ref)
        self.spawn_task(self._peer_poll_loop(), name="ras-peer-poll").detach()
        self.spawn_task(self._settop_poll_loop(), name="ras-settop-poll").detach()

    async def _register_with_ssc(self, callback_ref: ObjectRef) -> None:
        from repro.core.control.ssc import ssc_ref
        while True:
            try:
                live = await self.runtime.invoke(
                    ssc_ref(self.host.ip), "registerCallback", (callback_ref,),
                    timeout=self.params.call_timeout)
                self._local_live.update(live or [])
                self._ssc_synced = True
                return
            except (ServiceUnavailable, CommFailure):
                await self.kernel.sleep(1.0)

    # -- the single RAS operation -------------------------------------------

    def check_status(self, entities: List[Entity]) -> List[str]:
        self.checkstatus_served += 1
        return [self._status_of(entity) for entity in entities]

    def _status_of(self, entity: Entity) -> str:
        if isinstance(entity, str):
            return self._settop_status_of(entity)
        ref = entity
        if ref.ip == self.host.ip:
            if not self._ssc_synced:
                return UNKNOWN
            return ALIVE if ref in self._local_live else DEAD
        if is_settop_ip(ref.ip):
            # An object implemented by a settop process: its fate follows
            # the settop's.
            return self._settop_status_of(ref.ip)
        # Remote server: answer from cache, start watching if new.
        if ref not in self._remote_status:
            self._remote_status[ref] = UNKNOWN
            self._peer_refs.setdefault(ref.ip, None)
        return self._remote_status[ref]

    def _settop_status_of(self, settop_ip: str) -> str:
        if settop_ip not in self._settop_status:
            self._settop_status[settop_ip] = UNKNOWN
        return self._settop_status[settop_ip]

    # -- source 2: SSC callbacks ------------------------------------------

    def on_objects_registered(self, objects: List[ObjectRef]) -> None:
        self._local_live.update(objects)
        self._ssc_synced = True

    def on_objects_failed(self, objects: List[ObjectRef]) -> None:
        for ref in objects:
            self._local_live.discard(ref)

    # -- source 3: peer RAS polls ---------------------------------------------

    async def _peer_poll_loop(self) -> None:
        while True:
            await self.kernel.sleep(self.params.ras_peer_poll)
            for server_ip in sorted(self._peer_refs):
                await self._poll_peer(server_ip)

    async def _poll_peer(self, server_ip: str) -> None:
        watched = [ref for ref in self._remote_status if ref.ip == server_ip]
        if not watched:
            return
        peer = self._peer_refs.get(server_ip)
        if peer is None:
            try:
                peer = await self.names.resolve(f"svc/ras/{server_ip}")
                self._peer_refs[server_ip] = peer
            except (NamingError, ServiceUnavailable):
                return
        try:
            self.peer_polls_sent += 1
            statuses = await self.runtime.invoke(
                peer, "checkStatus", (watched,),
                timeout=self.params.ras_call_timeout)
            for ref, status in zip(watched, statuses):
                self._remote_status[ref] = status
        except InvalidObjectReference:
            # The peer RAS process died but its host is up; it will be
            # restarted by its SSC.  Keep cached statuses, re-resolve later.
            self._peer_refs[server_ip] = None
        except CommFailure:
            # No answer at all: the server itself is down (or partitioned)
            # -- everything it implemented is gone.  This is the step that
            # lets primary/backup fail-over cover whole-server crashes.
            for ref in watched:
                self._remote_status[ref] = DEAD
            self._peer_refs[server_ip] = None
            self.emit("server_declared_dead", server=server_ip,
                      objects=len(watched))

    # -- source 1: Settop Manager polls -----------------------------------------

    async def _settop_poll_loop(self) -> None:
        while True:
            await self.kernel.sleep(self.params.ras_peer_poll)
            by_nbhd: Dict[int, List[str]] = {}
            for settop_ip in sorted(self._settop_status):
                try:
                    by_nbhd.setdefault(neighborhood_of(settop_ip),
                                       []).append(settop_ip)
                except ValueError:
                    continue
            for nbhd, ips in sorted(by_nbhd.items()):
                await self._poll_settop_manager(nbhd, ips)

    async def _poll_settop_manager(self, nbhd: int, ips: List[str]) -> None:
        mgr = self._settopmgr_refs.get(nbhd)
        if mgr is None:
            try:
                mgr = await self.names.resolve(f"svc/settopmgr/{nbhd}")
                self._settopmgr_refs[nbhd] = mgr
            except (NamingError, ServiceUnavailable):
                return
        try:
            statuses = await self.runtime.invoke(
                mgr, "getStatus", (ips,), timeout=self.params.ras_call_timeout)
            for ip, status in zip(ips, statuses):
                self._settop_status[ip] = {
                    "up": ALIVE, "down": DEAD}.get(status, UNKNOWN)
        except ServiceUnavailable:
            self._settopmgr_refs[nbhd] = None

    # -- PR 4: load gauges ----------------------------------------------

    def report_load(self, service: str, gauges: dict) -> None:
        """A local admission-gated service pushed its current gauges."""
        self._load_gauges[service] = dict(gauges)
        if gauges.get("shedding"):
            self.emit("service_shedding", service=service,
                      queue_depth=gauges.get("queue_depth", 0))

    def report_load_batch(self, reports: dict) -> None:
        """The local SSC pushed one coalesced gauge batch (PR 5)."""
        for service in sorted(reports):
            self.report_load(service, reports[service])

    def load_gauges(self) -> dict:
        return {name: dict(g) for name, g in sorted(self._load_gauges.items())}

    def watched_counts(self) -> dict:
        return {
            "local": len(self._local_live),
            "remote": len(self._remote_status),
            "settops": len(self._settop_status),
            "gauged_services": len(self._load_gauges),
            "peer_polls_sent": self.peer_polls_sent,
            "checkstatus_served": self.checkstatus_served,
        }


class _RASServant:
    def __init__(self, svc: ResourceAuditService):
        self._svc = svc

    async def checkStatus(self, ctx: CallContext, entities: List[Entity]):
        return self._svc.check_status(list(entities))

    async def watchedCounts(self, ctx: CallContext):
        return self._svc.watched_counts()

    async def reportLoad(self, ctx: CallContext, service, gauges):
        self._svc.report_load(service, gauges)

    async def reportLoadBatch(self, ctx: CallContext, reports):
        self._svc.report_load_batch(dict(reports))

    async def loadGauges(self, ctx: CallContext):
        return self._svc.load_gauges()


class _SSCCallback:
    def __init__(self, svc: ResourceAuditService):
        self._svc = svc

    async def objectsRegistered(self, ctx: CallContext, objects):
        self._svc.on_objects_registered(list(objects))

    async def objectsFailed(self, ctx: CallContext, objects):
        self._svc.on_objects_failed(list(objects))
