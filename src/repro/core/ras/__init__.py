"""The Resource Audit Service (paper section 7).

"The Resource Audit Service (RAS) is a set of replicas that cooperatively
track the state of clients."  One replica runs per server; it learns
about local service objects from SSC callbacks, about settops from the
Settop Manager, and about remote service objects by polling the RAS on
the object's server every ``Params.ras_peer_poll`` seconds.  It holds no
durable state: after a restart it rebuilds lazily from the questions
clients ask (section 7.2).
"""

from repro.core.ras.client import AuditClient
from repro.core.ras.service import ResourceAuditService

__all__ = ["AuditClient", "ResourceAuditService"]
