"""Client-side audit library (paper section 7.2).

"This callback interface is actually implemented by a combination of
library code and a RAS object. ... the library code periodically invokes
checkStatus for all entities with callbacks.  If checkStatus indicates
that an entity is no longer active, the library code performs the
callback to the client."

Keeping callbacks in the *client's* library (not the RAS) is what lets a
restarted RAS recover with no remembered state.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Union

from repro.core.naming.client import NameClient
from repro.core.naming.errors import NamingError
from repro.core.params import Params
from repro.ocs.exceptions import ServiceUnavailable
from repro.ocs.objref import ObjectRef
from repro.ocs.runtime import OCSRuntime
from repro.sim.host import Process

Entity = Union[str, ObjectRef]


class AuditClient:
    """Watches entities through the local RAS and fires death callbacks."""

    def __init__(self, runtime: OCSRuntime, names: NameClient, params: Params):
        self.runtime = runtime
        self.names = names
        self.params = params
        self.kernel = runtime.kernel
        self._watches: Dict[Entity, Callable[[Entity], None]] = {}
        self._ras_ref: Optional[ObjectRef] = None
        self._task = None

    def watch(self, entity: Entity, on_dead: Callable[[Entity], None]) -> None:
        """Call ``on_dead(entity)`` (once) when the entity is seen dead."""
        self._watches[entity] = on_dead

    def unwatch(self, entity: Entity) -> None:
        self._watches.pop(entity, None)

    def watching(self, entity: Entity) -> bool:
        return entity in self._watches

    def start(self, process: Process) -> None:
        """Begin the periodic checkStatus loop on ``process``."""
        if self._task is None or self._task.done():
            self._task = process.create_task(self._poll_loop(),
                                             name="audit-client")

    async def _poll_loop(self) -> None:
        while True:
            await self.kernel.sleep(self.params.ras_client_poll)
            await self.poll_once()

    async def poll_once(self) -> None:
        """One checkStatus round; safe to call directly from tests."""
        if not self._watches:
            return
        entities = list(self._watches.keys())
        if self._ras_ref is None:
            try:
                # svc/ras uses the same-server selector: the local replica.
                self._ras_ref = await self.names.resolve("svc/ras")
            except (NamingError, ServiceUnavailable):
                return
        try:
            statuses = await self.runtime.invoke(
                self._ras_ref, "checkStatus", (entities,),
                timeout=self.params.ras_call_timeout)
        except ServiceUnavailable:
            self._ras_ref = None  # local RAS restarting; re-resolve next time
            return
        for entity, status in zip(entities, statuses):
            if status == "dead":
                callback = self._watches.pop(entity, None)
                if callback is not None:
                    callback(entity)
