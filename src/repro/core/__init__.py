"""The paper's primary contribution: mechanisms for availability + scaling.

Subpackages:

- :mod:`repro.core.naming` -- the extended name service: hierarchical
  contexts, replicated contexts with selectors, auditing of dead objects,
  and master/slave replication with majority election (paper sections 4-5).
- :mod:`repro.core.ras` -- the Resource Audit Service and the client-side
  audit library (section 7), plus the rejected alternatives of section 7.1
  for the comparison experiment.
- :mod:`repro.core.control` -- the Server and Cluster Service Controllers
  (section 6).
- :mod:`repro.core.replication` -- the two replication styles built on the
  name service: multiple active replicas and primary/backup via the
  bind-retry race (section 5).
- :mod:`repro.core.rebind` -- the auto-rebinding client proxy (section 8.2).
"""

from repro.core.params import Params

__all__ = ["Params"]
