"""Naming context servants: the objects clients actually invoke.

Each name-service replica exports one :class:`ContextServant` per context
in the tree ("the name service ... creates one object for every context",
section 9.2).  Servants are thin: they make the client's relative name
absolute and delegate to the replica, which owns traversal, selector
invocation, and update forwarding.
"""

from __future__ import annotations

from typing import Any

from repro.core.naming.store import join_name, split_name
from repro.ocs.objref import ObjectRef
from repro.ocs.runtime import CallContext


def _normalize_selector_spec(spec: Any) -> tuple:
    """Accept a policy name, an ObjectRef, or an explicit spec tuple."""
    if spec is None:
        return ("builtin", "first")
    if isinstance(spec, str):
        return ("builtin", spec)
    if isinstance(spec, ObjectRef):
        return ("object", spec)
    if isinstance(spec, tuple) and len(spec) == 2:
        return spec
    raise ValueError(f"bad selector spec: {spec!r}")


class ContextServant:
    """Implements the ``NamingContext`` IDL against one tree node."""

    def __init__(self, replica, path: str):
        self._replica = replica
        self._path = path

    def _abs(self, name: str) -> str:
        rel = split_name(name)
        base = split_name(self._path)
        return join_name(base + rel)

    # -- lookups --------------------------------------------------------

    async def resolve(self, ctx: CallContext, name: str):
        return await self._replica.op_resolve(self._abs(name), ctx.caller_ip)

    async def resolveFor(self, ctx: CallContext, name: str, caller_ip: str):
        return await self._replica.op_resolve(self._abs(name), caller_ip)

    async def list(self, ctx: CallContext, name: str):
        return await self._replica.op_list(self._abs(name), ctx.caller_ip)

    async def listRepl(self, ctx: CallContext, name: str):
        return await self._replica.op_list_repl(self._abs(name), ctx.caller_ip)

    # -- updates ------------------------------------------------------------

    async def bind(self, ctx: CallContext, name: str, obj: ObjectRef):
        await self._replica.op_mutate(("bind", self._abs(name), obj))

    async def unbind(self, ctx: CallContext, name: str):
        await self._replica.op_mutate(("unbind", self._abs(name)))

    async def bindNewContext(self, ctx: CallContext, name: str):
        await self._replica.op_mutate(("mkcontext", self._abs(name)))

    async def bindReplContext(self, ctx: CallContext, name: str, selector=None):
        spec = _normalize_selector_spec(selector)
        await self._replica.op_mutate(("mkrepl", self._abs(name), spec))

    async def setSelector(self, ctx: CallContext, name: str, spec):
        await self._replica.op_mutate(
            ("setselector", self._abs(name), _normalize_selector_spec(spec)))

    # -- local-only (not replicated) ------------------------------------------

    async def reportLoad(self, ctx: CallContext, name: str, member: str,
                         load: float):
        self._replica.selector_state.report_load(self._abs(name), member, load)

    async def reportLoadBatch(self, ctx: CallContext, entries):
        # PR 5: the SSC's coalesced per-server report.  Selector state
        # is per-replica and advisory, so -- like reportLoad -- this is
        # deliberately not a replicated mutation.
        for name, member, load in entries:
            self._replica.selector_state.report_load(self._abs(name), member,
                                                     load)
