"""IDL declarations for the name service (paper section 4.4).

The operation set matches the paper's ``NamingContext`` interface, plus
``resolveFor`` (the internal recursion carrying the original caller's
address so neighbourhood selectors work across context hops),
``setSelector``/``reportLoad`` (management of builtin selector policies),
and the ``NameReplica`` internal interface used for master/slave
replication and majority election (section 4.6).
"""

from repro.idl import MethodDef, register_interface

NAMING_CONTEXT = register_interface(
    "NamingContext",
    {
        # "Object resolve(in Name name) -- Resolve a name to an object."
        "resolve": ("name",),
        # Internal recursion step: resolve relative to this context on
        # behalf of the original caller at ``caller_ip``.
        "resolveFor": ("name", "caller_ip"),
        # "void bind(in Name name, in Object obj)"
        "bind": ("name", "obj"),
        # "void unbind(in Name name)"
        "unbind": ("name",),
        # "void bindNewContext(in Name name)"
        "bindNewContext": ("name",),
        # "void bindReplContext(in Name name)" -- extended with the
        # initial builtin selector policy.
        "bindReplContext": ("name", "selector"),
        # "void list(in Name name, out BindingList bl)"
        "list": ("name",),
        # "listRepl ... returns binding information about all of the
        # bindings in a replicated context."
        "listRepl": ("name",),
        "setSelector": ("name", "spec"),
        "reportLoad": ("name", "member", "load"),
        # PR 5: one coalesced selector-load batch per server per
        # interval; ``entries`` is a list of (path, member, load).
        "reportLoadBatch": ("entries",),
    },
    doc="Hierarchical naming context (paper section 4.4)",
    # resolve is the hottest call in the cluster and load reports are
    # absolute gauge upserts; none of them may queue behind the reply
    # cache.  bind/unbind/bindNewContext/bindReplContext/setSelector
    # mutate the tree and stay dedup'd.
    idempotent=("resolve", "resolveFor", "list", "listRepl",
                "reportLoad", "reportLoadBatch"),
)

REPLICATED_CONTEXT = register_interface(
    "ReplicatedContext",
    {},
    base="NamingContext",
    doc="Context whose lookups go through a selector (section 4.5)",
)

SELECTOR = register_interface(
    "Selector",
    {
        # select(bindings, caller_ip) -> chosen member name.  ``bindings``
        # is the Figure 6 list of (name, object reference) pairs.
        "select": ("bindings", "caller_ip"),
    },
    doc="Replica chooser for a ReplicatedContext (section 4.5)",
    idempotent=("select",),
)

NAME_REPLICA = register_interface(
    "NameReplica",
    {
        "forwardUpdate": ("op",),
        # PR 7: the master streams numbered change-log batches; each
        # entry is (seq, epoch, op) and ``from_seq`` is the seq just
        # before the batch so a receiver detects gaps immediately.
        "applyUpdates": MethodDef("applyUpdates", ("from_seq", "entries"),
                                  oneway=True),
        "requestVote": ("epoch", "candidate_ip", "candidate_seq"),
        # Acknowledged so the master can count reachable replicas: it
        # steps down when it no longer commands a majority.
        "heartbeat": ("epoch", "master_ip", "seq"),
        # Incremental catch-up from the change log: returns
        # ("ops", entries) for a shared-history cursor, or
        # ("snapshot", snap, epoch, digest) when the log was truncated
        # past the cursor or the histories forked.
        "fetchUpdates": ("from_seq", "from_epoch"),
        "status": (),
    },
    doc="Internal replica-to-replica protocol (section 4.6)",
    # The replica protocol is epoch/seq-guarded end to end: a re-sent
    # heartbeat reasserts the same (epoch, seq), requestVote returns the
    # recorded per-epoch answer, and fetchUpdates is a pure cursor read.
    # forwardUpdate is the one true mutation and stays dedup'd.
    idempotent=("requestVote", "heartbeat", "fetchUpdates", "status"),
)
