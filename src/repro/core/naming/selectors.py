"""Selector policies for replicated contexts (paper sections 4.5, 5.1).

Two kinds exist:

- **builtin** policies, interpreted locally by whichever name-service
  replica performs the resolve.  The deployed system's two selectors --
  per-neighbourhood and per-server static assignment -- are builtins, as
  are the extras used by the ablation experiments (round-robin, random,
  least-loaded).
- **object** selectors: arbitrary ``Selector`` objects bound under the
  name ``selector`` inside the replicated context (Figure 6), invoked
  remotely.  :class:`SelectorServant` is a base class for writing them.

Builtins receive the member binding list, the original caller's IP, and a
per-replica :class:`SelectorState` for policies that need memory (e.g.
round-robin counters), and return the chosen member *name*.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.core.naming.errors import SelectorFailed
from repro.net.address import is_settop_ip, neighborhood_of
from repro.ocs.objref import ObjectRef
from repro.ocs.runtime import CallContext
from repro.sim.rand import SeededRandom

Binding = Tuple[str, Optional[ObjectRef]]


class SelectorState:
    """Per-replica scratch state shared by all builtin policies."""

    def __init__(self, rng: Optional[SeededRandom] = None):
        self.rr_counters: Dict[str, int] = {}
        self.loads: Dict[str, Dict[str, float]] = {}
        self.rng = rng or SeededRandom(0)
        # Load threshold at which the load-aware policy skips a member.
        self.shed_level: float = SHED_LOAD

    def report_load(self, path: str, member: str, load: float) -> None:
        self.loads.setdefault(path, {})[member] = load


def _require_members(bindings: List[Binding]) -> List[Binding]:
    if not bindings:
        raise SelectorFailed("replicated context has no member bindings")
    return bindings


def select_first(bindings: List[Binding], caller_ip: str, path: str,
                 state: SelectorState) -> str:
    """The paper's "simple policy, like returning the first object"."""
    return _require_members(bindings)[0][0]


def select_round_robin(bindings: List[Binding], caller_ip: str, path: str,
                       state: SelectorState) -> str:
    members = _require_members(bindings)
    count = state.rr_counters.get(path, 0)
    state.rr_counters[path] = count + 1
    return members[count % len(members)][0]


def select_random(bindings: List[Binding], caller_ip: str, path: str,
                  state: SelectorState) -> str:
    members = _require_members(bindings)
    return members[state.rng.randint(0, len(members) - 1)][0]


def select_neighborhood(bindings: List[Binding], caller_ip: str, path: str,
                        state: SelectorState) -> str:
    """Static per-neighbourhood assignment (section 5.1).

    "The neighborhood selector object determines the neighborhood number
    of the caller from its IP address, and returns an object reference
    for the appropriate replica."  Members are bound under their
    neighbourhood number (Figure 8: ``svc/cmgr/1``, ``svc/cmgr/2``).
    """
    members = _require_members(bindings)
    if not is_settop_ip(caller_ip):
        raise SelectorFailed(
            f"neighborhood selector needs a settop caller, got {caller_ip}")
    wanted = str(neighborhood_of(caller_ip))
    for name, _ref in members:
        if name == wanted:
            return name
    raise SelectorFailed(f"no replica bound for neighborhood {wanted} in {path!r}")


def select_same_server(bindings: List[Binding], caller_ip: str, path: str,
                       state: SelectorState) -> str:
    """Static per-server assignment (section 5.1).

    "For services replicated on a per-server basis, the selector we use
    chooses the replica whose IP address matches the caller's."  Member
    names are server IPs (Figure 8's file service contexts) or the member
    reference itself lives at the caller's address.
    """
    members = _require_members(bindings)
    for name, _ref in members:
        if name == caller_ip:
            return name
    for name, ref in members:
        if ref is not None and ref.ip == caller_ip:
            return name
    raise SelectorFailed(f"no replica on caller's server {caller_ip} in {path!r}")


def select_least_loaded(bindings: List[Binding], caller_ip: str, path: str,
                        state: SelectorState) -> str:
    """Dynamic load balancing (section 5.1's "could be accomplished").

    Members report load through ``reportLoad``; unreported members count
    as idle, and ties break by name for determinism.
    """
    members = _require_members(bindings)
    loads = state.loads.get(path, {})
    return min(members, key=lambda b: (loads.get(b[0], 0.0), b[0]))[0]


# Load at or above this level means the member is shedding (its
# admission gate's inflight capacity is full); the load-aware policy
# treats it as unavailable.  Overridable per replica via
# ``SelectorState.shed_level`` (set from Params.shed_load_level).
SHED_LOAD = 1.0


def select_load_aware(bindings: List[Binding], caller_ip: str, path: str,
                      state: SelectorState) -> str:
    """Shed-aware rotation (PR 4; section 5.1's load-balancing knob).

    Members whose last reported load is at or above the shed level are
    skipped while any healthy member exists -- an overloaded replica
    stops receiving *new* bindings without being declared dead.  The
    healthy pool rotates round-robin so a recovered member (load report
    drops below the level, or its report ages out via ``report_load``)
    resumes service automatically.  If every member is shedding, fall
    back to plain rotation: a saturated answer still beats none, and the
    server-side gate is the final authority.
    """
    members = _require_members(bindings)
    loads = state.loads.get(path, {})
    shed_level = getattr(state, "shed_level", SHED_LOAD)
    healthy = [b for b in members if loads.get(b[0], 0.0) < shed_level]
    pool = healthy or members
    count = state.rr_counters.get(path, 0)
    state.rr_counters[path] = count + 1
    return pool[count % len(pool)][0]


BUILTIN_SELECTORS: Dict[str, Callable[..., str]] = {
    "first": select_first,
    "roundrobin": select_round_robin,
    "random": select_random,
    "neighborhood": select_neighborhood,
    "sameserver": select_same_server,
    "leastloaded": select_least_loaded,
    "loadaware": select_load_aware,
}


def run_builtin(policy: str, bindings: List[Binding], caller_ip: str,
                path: str, state: SelectorState) -> str:
    fn = BUILTIN_SELECTORS.get(policy)
    if fn is None:
        raise SelectorFailed(f"unknown builtin selector {policy!r}")
    return fn(bindings, caller_ip, path, state)


class SelectorServant:
    """Base class for custom ``Selector`` objects (Figure 6).

    Subclasses override :meth:`choose`; export with
    ``runtime.export(servant, "Selector", object_id=...)`` and bind the
    resulting reference under ``<replicated-context>/selector``.
    """

    def choose(self, bindings: List[Binding], caller_ip: str) -> str:
        raise NotImplementedError

    async def select(self, ctx: CallContext, bindings: List[Binding],
                     caller_ip: str) -> str:
        name = self.choose(list(bindings), caller_ip)
        if not any(name == n for n, _ in bindings):
            raise SelectorFailed(f"selector chose unknown member {name!r}")
        return name


class PreferredMemberSelector(SelectorServant):
    """A custom selector preferring an explicit member, with fallback."""

    def __init__(self, preferred: str):
        self.preferred = preferred

    def choose(self, bindings: List[Binding], caller_ip: str) -> str:
        for name, _ref in bindings:
            if name == self.preferred:
                return name
        if not bindings:
            raise SelectorFailed("no members")
        return bindings[0][0]
