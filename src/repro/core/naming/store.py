"""The replicated name tree: pure data structure + deterministic updates.

A :class:`NameStore` holds one replica's copy of the cluster name space
(paper Figure 5/8).  All mutation goes through numbered update operations
-- ``("bind", path, ref)`` etc. -- applied in master-assigned sequence
order, so every replica that has applied the same prefix has an identical
tree.  The store is deliberately free of I/O: the replica machinery in
:mod:`repro.core.naming.replica` owns forwarding, multicast and election.

Node kinds mirror section 4.3's three classes of bound objects:

- ``context``      -- a locally implemented :class:`NamingContext`;
- ``replicated``   -- a :class:`ReplicatedContext` (section 4.5) whose
  member bindings are hidden behind a selector;
- ``leaf``         -- any other object reference, *including* contexts
  implemented by other name services (the file service), which traversal
  hands off to remotely.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.core.naming.errors import (
    AlreadyBound,
    InvalidName,
    NameNotFound,
    NotAContext,
)
from repro.ocs.objref import ObjectRef

SELECTOR_NAME = "selector"

# Selector specs stored in the tree.  A builtin spec is interpreted by
# whichever replica performs the resolve (every replica carries the same
# builtin implementations); an object spec is a user-provided Selector
# object invoked remotely, exactly as in Figure 6.
BuiltinSpec = Tuple[str, str]          # ("builtin", policy_name)
ObjectSpec = Tuple[str, ObjectRef]     # ("object", ref)


def split_name(name: str) -> List[str]:
    """Split and validate a path name like ``svc/mds/forge``."""
    if not isinstance(name, str):
        raise InvalidName(f"name must be a string, got {type(name).__name__}")
    stripped = name.strip("/")
    if stripped == "":
        return []
    components = stripped.split("/")
    for comp in components:
        if comp == "" or comp in (".", ".."):
            raise InvalidName(f"bad component in name {name!r}")
    return components


def join_name(components: List[str]) -> str:
    return "/".join(components)


@dataclass
class Node:
    kind: str                       # "context" | "replicated" | "leaf"
    ref: Optional[ObjectRef] = None  # leaf only
    bindings: Dict[str, "Node"] = field(default_factory=dict)
    selector: Any = ("builtin", "first")   # replicated only

    def is_context(self) -> bool:
        return self.kind in ("context", "replicated")

    def members(self) -> List[Tuple[str, "Node"]]:
        """Bindings eligible for selection (excludes the selector slot)."""
        return [(n, node) for n, node in sorted(self.bindings.items())
                if n != SELECTOR_NAME]


class NameStore:
    """One replica's copy of the name space plus the update log cursor."""

    def __init__(self) -> None:
        self.root = Node(kind="context")
        self.applied_seq = 0

    # -- lookup ----------------------------------------------------------

    def get_node(self, path: str) -> Node:
        """Fetch the node at ``path`` with plain traversal (no selectors).

        Used by update validation and by operations that must address a
        replicated context *itself* (binding members into it).
        """
        node = self.root
        for comp in split_name(path):
            node = self.child(node, comp)
        return node

    def child(self, node: Node, comp: str) -> Node:
        if not node.is_context():
            raise NotAContext(f"{comp!r} looked up inside a non-context")
        if comp not in node.bindings:
            raise NameNotFound(comp)
        return node.bindings[comp]

    def exists(self, path: str) -> bool:
        try:
            self.get_node(path)
            return True
        except (NameNotFound, NotAContext):
            return False

    def list_bindings(self, path: str) -> List[Tuple[str, str, Optional[ObjectRef]]]:
        """List a context: (name, kind, ref-if-leaf) tuples."""
        node = self.get_node(path)
        if not node.is_context():
            raise NotAContext(f"{path!r} is not a context")
        out = []
        for name, child in sorted(node.bindings.items()):
            out.append((name, child.kind, child.ref))
        return out

    def iter_leaf_bindings(self) -> Iterator[Tuple[str, ObjectRef]]:
        """Yield every bound object reference with its full path.

        This is the set the master's audit submits to the RAS (section
        4.7): every object in the name space is checked for liveness.
        """
        def walk(prefix: List[str], node: Node) -> Iterator[Tuple[str, ObjectRef]]:
            if node.kind == "leaf":
                if node.ref is not None:
                    yield join_name(prefix), node.ref
                return
            if node.kind == "replicated" and node.selector[0] == "object":
                yield join_name(prefix + [SELECTOR_NAME]), node.selector[1]
            for name, child in sorted(node.bindings.items()):
                yield from walk(prefix + [name], child)

        yield from walk([], self.root)

    # -- updates -----------------------------------------------------------

    def check(self, op: tuple) -> None:
        """Validate an update against the current tree (master-side).

        Raises the same exceptions the paper's IDL operations raise;
        crucially, ``bind`` on an existing name raises
        :class:`AlreadyBound`, which serializing through the master turns
        into the primary-election race of section 5.2.
        """
        kind = op[0]
        if kind in ("bind", "mkcontext", "mkrepl"):
            path = op[1]
            components = split_name(path)
            if not components:
                raise InvalidName("cannot create the root")
            parent = self.get_node(join_name(components[:-1]))
            if not parent.is_context():
                raise NotAContext(join_name(components[:-1]))
            leafname = components[-1]
            if leafname in parent.bindings:
                raise AlreadyBound(path)
            if kind == "bind" and not isinstance(op[2], ObjectRef):
                raise InvalidName(f"bind requires an object reference, got {op[2]!r}")
        elif kind == "unbind":
            path = op[1]
            components = split_name(path)
            if not components:
                raise InvalidName("cannot unbind the root")
            parent = self.get_node(join_name(components[:-1]))
            if components[-1] not in parent.bindings:
                raise NameNotFound(path)
        elif kind == "setselector":
            node = self.get_node(op[1])
            if node.kind != "replicated":
                raise NotAContext(f"{op[1]!r} is not a replicated context")
            spec = op[2]
            if (not isinstance(spec, tuple) or len(spec) != 2
                    or spec[0] not in ("builtin", "object")):
                raise InvalidName(f"bad selector spec {spec!r}")
        else:
            raise InvalidName(f"unknown update op {kind!r}")

    def apply(self, op: tuple) -> None:
        """Apply a validated update.  Deterministic across replicas."""
        kind = op[0]
        if kind == "bind":
            parent, leaf = self._parent_of(op[1])
            # Binding the literal name "selector" inside a replicated
            # context installs the selector object (Figure 6).
            if parent.kind == "replicated" and leaf == SELECTOR_NAME:
                parent.selector = ("object", op[2])
            parent.bindings[leaf] = Node(kind="leaf", ref=op[2])
        elif kind == "mkcontext":
            parent, leaf = self._parent_of(op[1])
            parent.bindings[leaf] = Node(kind="context")
        elif kind == "mkrepl":
            parent, leaf = self._parent_of(op[1])
            selector = op[2] if len(op) > 2 else ("builtin", "first")
            parent.bindings[leaf] = Node(kind="replicated", selector=selector)
        elif kind == "unbind":
            parent, leaf = self._parent_of(op[1])
            node = parent.bindings.pop(leaf, None)
            if (parent.kind == "replicated" and leaf == SELECTOR_NAME
                    and node is not None):
                parent.selector = ("builtin", "first")
        elif kind == "setselector":
            self.get_node(op[1]).selector = op[2]
        else:  # pragma: no cover - check() rejects these first
            raise InvalidName(f"unknown update op {kind!r}")

    def apply_numbered(self, seq: int, op: tuple) -> bool:
        """Apply update ``seq`` if it is the next expected one.

        Returns True when applied; False when already applied (duplicate
        delivery).  A gap (seq too far ahead) raises ``ValueError`` so the
        replica knows to catch up from the master's change log (PR 7) --
        it streams the missing ``(from_seq, current]`` tail in O(gap)
        ops, taking a full snapshot only if the log was truncated past
        our cursor or the histories forked.
        """
        if seq <= self.applied_seq:
            return False
        if seq != self.applied_seq + 1:
            raise ValueError(f"update gap: have {self.applied_seq}, got {seq}")
        self.apply(op)
        self.applied_seq = seq
        return True

    def _parent_of(self, path: str) -> Tuple[Node, str]:
        components = split_name(path)
        parent = self.get_node(join_name(components[:-1]))
        return parent, components[-1]

    # -- snapshot (state transfer to lagging/new replicas) -----------------

    def snapshot(self) -> dict:
        def encode(node: Node) -> dict:
            out: Dict[str, Any] = {"kind": node.kind}
            if node.kind == "leaf":
                out["ref"] = node.ref
            else:
                if node.kind == "replicated":
                    out["selector"] = node.selector
                out["bindings"] = {n: encode(c) for n, c in node.bindings.items()}
            return out

        return {"seq": self.applied_seq, "root": encode(self.root)}

    def load_snapshot(self, snap: dict) -> None:
        def decode(data: dict) -> Node:
            node = Node(kind=data["kind"])
            if node.kind == "leaf":
                node.ref = data["ref"]
            else:
                if node.kind == "replicated":
                    node.selector = data["selector"]
                node.bindings = {n: decode(c) for n, c in data["bindings"].items()}
            return node

        self.root = decode(snap["root"])
        self.applied_seq = snap["seq"]

    def context_paths(self) -> List[str]:
        """All context/replicated paths (for exporting context objects)."""
        out: List[str] = []

        def walk(prefix: List[str], node: Node) -> None:
            if node.is_context():
                out.append(join_name(prefix))
                for name, child in node.bindings.items():
                    walk(prefix + [name], child)

        walk([], self.root)
        return sorted(out)
