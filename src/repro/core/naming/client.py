"""Client-side name service library.

Wraps the bootstrap information every process has -- the IP address of a
name-service replica (settops receive it in the boot broadcast, section
3.4.1; server processes use their local replica) -- into typed helpers
with the retry behaviour services actually need during cluster start-up.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import repro.core.naming.interfaces  # noqa: F401 - registers IDL types
from repro.core.naming.cache import BindingCache
from repro.core.naming.errors import NamingError, NoMaster
from repro.core.params import Params
from repro.ocs.exceptions import ServiceUnavailable
from repro.ocs.objref import ANY_INCARNATION, ObjectRef
from repro.ocs.runtime import OCSRuntime
from repro.sim.errors import SimTimeoutError


def ns_root_ref(ip: str, port: int = 5000) -> ObjectRef:
    """The persistent bootstrap reference to a replica's root context."""
    return ObjectRef(ip=ip, port=port, incarnation=ANY_INCARNATION,
                     type_id="NamingContext", object_id="")


def ns_replica_ref(ip: str, port: int = 5000) -> ObjectRef:
    """The internal replica object at ``ip`` (tests and tooling)."""
    return ObjectRef(ip=ip, port=port, incarnation=ANY_INCARNATION,
                     type_id="NameReplica", object_id="replica")


class NameClient:
    """A process's handle on the cluster name space.

    ``ns_ip`` may be a single replica address or a list; with a list, a
    replica that stops answering rotates the client to the next one --
    the availability the per-server replication exists to provide
    (section 4.6).  A settop's list comes from its boot parameters.

    ``cache`` plugs in the host's shared :class:`BindingCache` (PR 5):
    ``resolve()`` then answers repeats from the cache and coalesces
    concurrent misses into one name-service call.  Coherence is by
    exception -- callers report bad bindings via :meth:`invalidate`
    when a use raises.  Server-side clients (binding watchdogs,
    replica-conflict resolution, settle probes) stay uncached because
    they exist to observe the *real* name-space state.
    """

    def __init__(self, runtime: OCSRuntime, ns_ip,
                 params: Optional[Params] = None,
                 cache: Optional[BindingCache] = None):
        self.runtime = runtime
        self.params = params or Params()
        ips = [ns_ip] if isinstance(ns_ip, str) else list(ns_ip)
        if not ips:
            raise ValueError("NameClient needs at least one replica address")
        self._roots = [ns_root_ref(ip, self.params.ns_port) for ip in ips]
        self._current = 0
        self.cache = cache

    @property
    def root(self) -> ObjectRef:
        return self._roots[self._current]

    async def _invoke(self, method: str, args: tuple):
        last_error: Optional[Exception] = None
        for attempt in range(len(self._roots)):
            try:
                return await self.runtime.invoke(self.root, method, args,
                                                 timeout=self.params.call_timeout)
            except ServiceUnavailable as err:
                last_error = err
                self._current = (self._current + 1) % len(self._roots)
        raise last_error

    async def resolve(self, name: str) -> ObjectRef:
        if self.cache is not None:
            return await self.cache.resolve(name, self._resolve_direct)
        return await self._resolve_direct(name)

    async def _resolve_direct(self, name: str) -> ObjectRef:
        return await self._invoke("resolve", (name,))

    def invalidate(self, name: str, ref: Optional[ObjectRef] = None) -> None:
        """Report a cached binding bad (a use raised StaleReference /
        InvalidObjectReference / Overloaded); no-op when uncached."""
        if self.cache is not None:
            self.cache.invalidate(name, ref)

    async def bind(self, name: str, ref: ObjectRef) -> None:
        await self._invoke("bind", (name, ref))

    async def unbind(self, name: str) -> None:
        await self._invoke("unbind", (name,))

    async def bind_new_context(self, name: str) -> None:
        await self._invoke("bindNewContext", (name,))

    async def bind_repl_context(self, name: str, selector: str = "first") -> None:
        await self._invoke("bindReplContext", (name, selector))

    async def set_selector(self, name: str, spec) -> None:
        await self._invoke("setSelector", (name, spec))

    async def list(self, name: str) -> List[Tuple[str, str, Optional[ObjectRef]]]:
        return await self._invoke("list", (name,))

    async def list_repl(self, name: str) -> List[Tuple[str, str, Optional[ObjectRef]]]:
        return await self._invoke("listRepl", (name,))

    async def report_load(self, name: str, member: str, load: float) -> None:
        await self._invoke("reportLoad", (name, member, load))

    # -- start-up helpers ------------------------------------------------

    async def ensure_context(self, name: str, replicated: bool = False,
                             selector: str = "first") -> None:
        """Create a context if missing; tolerate races with other creators."""
        from repro.core.naming.errors import AlreadyBound
        try:
            if replicated:
                await self.bind_repl_context(name, selector)
            else:
                await self.bind_new_context(name)
        except AlreadyBound:
            pass

    async def bind_retrying(self, name: str, ref: ObjectRef,
                            give_up_after: float = 120.0) -> None:
        """Bind, retrying while the name service has no master.

        Used during cluster start-up (section 6.3 step 3: services can
        only register once a majority of name service replicas have
        elected a primary).
        """
        kernel = self.runtime.kernel
        deadline = kernel.now + give_up_after
        while True:
            try:
                await self.bind(name, ref)
                return
            except (NoMaster, ServiceUnavailable):
                if kernel.now >= deadline:
                    raise
                await kernel.sleep(1.0)

    async def wait_resolve(self, name: str, timeout: float = 60.0,
                           poll: float = 0.5) -> ObjectRef:
        """Poll until ``name`` resolves (another service's start-up race)."""
        kernel = self.runtime.kernel
        deadline = kernel.now + timeout
        while True:
            try:
                return await self.resolve(name)
            except (NamingError, ServiceUnavailable):
                if kernel.now >= deadline:
                    raise SimTimeoutError(f"{name!r} never became resolvable")
                await kernel.sleep(poll)
