"""Name service exceptions, all registered for wire transport."""

from repro.idl import register_exception


@register_exception
class NamingError(Exception):
    """Base class for name-service errors."""


@register_exception
class NameNotFound(NamingError):
    """The name does not denote a binding in the context."""


@register_exception
class AlreadyBound(NamingError):
    """The name is already bound.

    This error *is* the primary-election mechanism for primary/backup
    services (section 5.2): every backup's periodic ``bind`` fails with
    it while the primary's binding is alive.
    """


@register_exception
class NotAContext(NamingError):
    """Path traversal hit a leaf object where a context was required."""


@register_exception
class InvalidName(NamingError):
    """Malformed name (empty component, bad characters)."""


@register_exception
class NoMaster(NamingError):
    """No name-service master currently elected; updates cannot proceed.

    Reads are still served from any replica.  Callers retry -- the
    backup-bind loop simply tries again next interval.
    """


@register_exception
class SelectorFailed(NamingError):
    """The replicated context's selector could not produce a choice."""
