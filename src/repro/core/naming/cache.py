"""Per-host binding cache with singleflight resolves (PR 5).

The paper's object model validates references *lazily*: "the client will
detect this on the next attempt to use the object reference" (section
3.2.1).  Because a stale reference raises on use and the client rebinds,
clients may cache name-service bindings indefinitely without any
coherence protocol -- coherence is by exception, not by invalidation
messages.  That property is the system's scaling mechanism: resolution
traffic stays proportional to *failures*, not to *calls*, so a
population of settops stops resolving once per call (ROADMAP's "heavy
traffic from millions of users").

One :class:`BindingCache` exists per simulated host and is shared by
every :class:`~repro.core.naming.client.NameClient` on that host that
opts in (settop-side clients do; server-side service clients do not,
because binding watchdogs and replica-conflict resolution must observe
the real name-space state).

Singleflight: when N components on one host resolve the same name
concurrently -- the rebind thundering herd after a primary kill -- only
the first issues a name-service call; the rest ride its answer.  Waiters
are completed in FIFO arrival order, so the schedule stays
deterministic.
"""

from __future__ import annotations

from typing import Awaitable, Callable, Dict, List, Optional, Tuple

from repro.ocs.objref import ObjectRef
from repro.sim.kernel import Future, Kernel

Resolver = Callable[[str], Awaitable[ObjectRef]]


class CacheEntry:
    """One cached binding: the ref (with its incarnation) plus usage."""

    __slots__ = ("ref", "cached_at", "hits")

    def __init__(self, ref: ObjectRef, cached_at: float):
        self.ref = ref
        self.cached_at = cached_at
        self.hits = 0


class BindingCache:
    """Name -> ObjectRef cache for one host, with singleflight resolves.

    Entries are never expired by time: they are dropped only when a user
    reports the binding bad (:meth:`invalidate`, driven by
    ``StaleReference``/``InvalidObjectReference``/``Overloaded`` on use)
    or replaced by a fresh resolve after such an invalidation.  The
    chaos ``cache_coherence`` monitor checks the flip side: a cache must
    not keep *serving* a dead binding past the audit bound.
    """

    def __init__(self, kernel: Kernel, owner: str = "?"):
        self.kernel = kernel
        self.owner = owner  # host ip; names the hb pseudo-actor
        self._entries: Dict[str, CacheEntry] = {}
        # name -> FIFO list of waiter futures behind the in-flight
        # leader resolve for that name.
        self._inflight: Dict[str, List[Future]] = {}
        self.hits = 0
        self.misses = 0
        self.coalesced = 0
        self.invalidations = 0

    # -- construction ---------------------------------------------------

    @classmethod
    def for_host(cls, host) -> "BindingCache":
        """The shared cache for ``host``, created on first use."""
        cache = getattr(host, "binding_cache", None)
        if cache is None:
            cache = cls(host.kernel, owner=host.ip)
            host.binding_cache = cache
        return cache

    def _hb_write(self, name: str, ver: str) -> None:
        # Cache state is host-private: writes land on a per-host
        # pseudo-actor so the write-order oracle sees install/invalidate
        # chains without manufacturing cross-host race pairs.
        hb = self.kernel.hb_log
        if hb is not None:
            hb.emit("hb", "write", actor=f"{self.owner}/cache",
                    var=f"cache:{self.owner}:{name}", ver=ver)

    # -- resolution -----------------------------------------------------

    def lookup(self, name: str) -> Optional[ObjectRef]:
        """Peek at the cached ref for ``name`` without counting a hit."""
        entry = self._entries.get(name)
        return entry.ref if entry is not None else None

    async def resolve(self, name: str, resolver: Resolver) -> ObjectRef:
        """Return the cached ref for ``name``, resolving on a miss.

        Concurrent misses for the same name coalesce onto one
        ``resolver`` call; the leader's result (or exception) is fanned
        out to every waiter in arrival order.
        """
        entry = self._entries.get(name)
        if entry is not None:
            entry.hits += 1
            self.hits += 1
            return entry.ref
        waiters = self._inflight.get(name)
        if waiters is not None:
            self.coalesced += 1
            fut = self.kernel.create_future()
            waiters.append(fut)
            return await fut
        self.misses += 1
        self._inflight[name] = []
        try:
            ref = await resolver(name)
        except BaseException as err:
            for fut in self._inflight.pop(name):
                if not fut.done():
                    fut.set_exception(err)
            raise
        # A resolve that lost a race with an invalidation of a *newer*
        # entry cannot happen: entries are keyed by name and the leader
        # installs before any waiter observes the result.
        self._entries[name] = CacheEntry(ref, self.kernel.now)
        self._hb_write(name, repr(ref))
        for fut in self._inflight.pop(name):
            if not fut.done():
                fut.set_result(ref)
        return ref

    # -- invalidation ---------------------------------------------------

    def invalidate(self, name: str, ref: Optional[ObjectRef] = None) -> bool:
        """Drop the cached binding for ``name``.

        When ``ref`` is given, the entry is dropped only if it still
        holds that exact ref -- a failure report against an old ref must
        not evict a binding someone already refreshed.
        """
        entry = self._entries.get(name)
        if entry is None:
            return False
        if ref is not None and entry.ref != ref:
            return False
        del self._entries[name]
        self.invalidations += 1
        self._hb_write(name, "<invalidated>")
        return True

    def clear(self) -> None:
        self._entries.clear()

    # -- introspection --------------------------------------------------

    def entries(self) -> List[Tuple[str, CacheEntry]]:
        """Snapshot of (name, entry), sorted for deterministic probes."""
        return [(name, self._entries[name])
                for name in sorted(self._entries)]

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> dict:
        return {
            "entries": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
            "coalesced": self.coalesced,
            "invalidations": self.invalidations,
            "hit_rate": round(self.hit_rate, 4),
        }


def cache_for(host, params) -> Optional[BindingCache]:
    """The host's shared cache, or ``None`` when caching is disabled."""
    if params is not None and not getattr(params, "binding_cache", True):
        return None
    return BindingCache.for_host(host)
