"""The extended name service (paper sections 4-5).

The name service is "a fundamental part of our system": it publishes
object references, hides replication behind :class:`ReplicatedContext`
objects and selectors, removes dead objects via auditing, and is itself
replicated on every server with master/slave replication and majority
election.
"""

from repro.core.naming.cache import BindingCache, cache_for
from repro.core.naming.client import NameClient, ns_replica_ref, ns_root_ref
from repro.core.naming.errors import (
    AlreadyBound,
    InvalidName,
    NameNotFound,
    NoMaster,
    NotAContext,
)
from repro.core.naming.replica import NameReplicaProcess, start_name_replica
from repro.core.naming.selectors import BUILTIN_SELECTORS
from repro.core.naming.store import NameStore

__all__ = [
    "AlreadyBound",
    "BUILTIN_SELECTORS",
    "BindingCache",
    "InvalidName",
    "NameClient",
    "cache_for",
    "NameNotFound",
    "NameReplicaProcess",
    "NameStore",
    "NoMaster",
    "NotAContext",
    "ns_replica_ref",
    "ns_root_ref",
    "start_name_replica",
]
