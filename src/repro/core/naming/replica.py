"""Name-service replica: master/slave replication, election, auditing.

Section 4.6: "Because the name service is essential to all services, it
is replicated on every server node with master-slave replication.  The
master is elected using a majority scheme similar to the one in the Echo
file system.  Once a master is elected, all updates are forwarded to the
master, which serializes them and multicasts them to the slaves.  Any
name service replica can process a resolve or list operation without
contacting the master."

Section 4.7: the name service "uses the Resource Audit Service to
determine if a service object is alive or dead ... and removes an object
within a few seconds of its death" -- the master polls its local RAS
every ``Params.ns_audit_poll`` seconds (section 9.7).
"""

from __future__ import annotations

import hashlib
from typing import Any, Dict, List, Optional, Tuple

import repro.core.naming.interfaces  # noqa: F401 - registers IDL types
from repro.core.naming.context import ContextServant
from repro.core.naming.errors import (
    NameNotFound,
    NamingError,
    NoMaster,
    NotAContext,
    SelectorFailed,
)
from repro.core.naming.selectors import SelectorState, run_builtin
from repro.core.naming.store import SELECTOR_NAME, NameStore, join_name, split_name
from repro.core.params import Params
from repro.core.replication import GENESIS_EPOCH, ChangeLog, atomic_disk_write
from repro.idl import lookup_interface
from repro.net.network import Network
from repro.ocs.exceptions import ServiceUnavailable
from repro.ocs.objref import ANY_INCARNATION, ObjectRef
from repro.ocs.runtime import CallContext, OCSRuntime
from repro.sim.errors import CancelledError
from repro.sim.host import DiskWedged, Host, Process
from repro.sim.kernel import Semaphore, gather
from repro.sim.rand import SeededRandom, stable_seed
from repro.sim.trace import TraceLog

ROOT_OID = ""
REPLICA_OID = "replica"

# CPU cost of one resolve on a replica (mid-90s SGI Challenge scale: a
# couple of thousand lookups per second per node).
RESOLVE_CPU_SECONDS = 0.0005


def _context_oid(path: str) -> str:
    return ROOT_OID if path == "" else f"ctx:{path}"


#: on-disk key of the persisted name-tree snapshot (plus the write-swap
#: spare that atomic_disk_write maintains next to it)
SNAPSHOT_KEY = "ns/state"


def _snapshot_sum(wrapper: dict) -> str:
    """Integrity checksum over a persisted snapshot wrapper.

    Covers the tree snapshot plus the change-log anchor (epoch, digest)
    stored beside it, so a torn or bit-rotten ``ns/state`` is detected
    on restore instead of loaded as truth.
    """
    return hashlib.sha256(
        f"{wrapper.get('snap')!r}|{wrapper.get('epoch')!r}"
        f"|{wrapper.get('digest')}".encode()).hexdigest()[:16]


class NameReplicaProcess:
    """One name-service replica: the ``ns`` process on a server."""

    def __init__(self, process: Process, runtime: OCSRuntime, params: Params,
                 replica_ips: List[str], rng: Optional[SeededRandom] = None,
                 trace: Optional[TraceLog] = None):
        self.process = process
        self.runtime = runtime
        self.kernel = process.kernel
        self.params = params
        self.ip = runtime.ip
        self.replica_ips = sorted(replica_ips)
        if self.ip not in self.replica_ips:
            raise ValueError(f"{self.ip} not in the replica set {replica_ips}")
        self.rng = rng or SeededRandom(stable_seed("ns", self.ip))
        self.trace = trace
        self.store = NameStore()
        # PR 7: the numbered change log lives on the host disk; a
        # restarted replica resumes from its old cursor and catches up
        # incrementally (online bootstrap) instead of starting empty.
        self.changelog = ChangeLog(process.host.disk, "ns/changelog",
                                   retain=params.changelog_retain,
                                   on_compact=self._persist_snapshot)
        self.selector_state = SelectorState(rng=self.rng.stream("selectors"))
        self._cpu = Semaphore(self.kernel, 1)
        # -- election state (Echo-style majority voting) ----------------
        self.role = "slave"                  # slave | candidate | master
        self.epoch = 0
        self.voted_for: Optional[str] = None
        self.master_ip: Optional[str] = None
        self.last_heartbeat = self.kernel.now
        self.last_master_seq = 0             # from heartbeats (lag gauge)
        self._election_timeout = self._new_timeout()
        self._catching_up = False
        # -- metrics ------------------------------------------------------
        self.resolves_served = 0
        self.updates_forwarded = 0
        self.updates_applied = 0
        self.audit_removals = 0
        self.catch_ups = 0
        self.catch_up_ops = 0
        self.snapshot_fetches = 0
        self._restore_from_disk()
        # -- exports -------------------------------------------------------
        self._context_servants: Dict[str, ContextServant] = {}
        self.runtime.export(_ReplicaServant(self), "NameReplica",
                            object_id=REPLICA_OID)
        self._sync_context_exports()
        self.process.create_task(self._watchdog(), name="ns-watchdog").detach()

    # ------------------------------------------------------------------
    # public helpers
    # ------------------------------------------------------------------

    @property
    def quorum(self) -> int:
        return len(self.replica_ips) // 2 + 1

    @property
    def is_master(self) -> bool:
        """Monitor probe: is this replica the acting master?"""
        return self.role == "master" and self.process.alive

    def leaf_bindings(self) -> List[Tuple[str, ObjectRef]]:
        """Monitor probe: the auditable leaf bindings of this replica's view.

        Only incarnation-specific references are returned -- wildcard
        (bootstrap) references never go stale, so the dead-binding audit
        (section 4.7) and the chaos audit-convergence monitor both ignore
        them.
        """
        return [(path, ref) for path, ref in self.store.iter_leaf_bindings()
                if ref.incarnation != ANY_INCARNATION]

    def context_ref(self, path: str, kind: str = "context") -> ObjectRef:
        """A persistent reference to one of this replica's contexts.

        Context references carry the wildcard incarnation: "name service
        context objects are persistent so that they can be activated on
        demand" (section 9.2).
        """
        type_id = "ReplicatedContext" if kind == "replicated" else "NamingContext"
        return ObjectRef(ip=self.ip, port=self.runtime.port,
                         incarnation=ANY_INCARNATION, type_id=type_id,
                         object_id=_context_oid(path))

    def root_ref(self) -> ObjectRef:
        return self.context_ref("")

    def peer_replica_ref(self, ip: str) -> ObjectRef:
        return ObjectRef(ip=ip, port=self.params.ns_port,
                         incarnation=ANY_INCARNATION, type_id="NameReplica",
                         object_id=REPLICA_OID)

    def _emit(self, event: str, **fields: Any) -> None:
        if self.trace is not None:
            self.trace.emit("ns", event, replica=self.ip, **fields)

    # ------------------------------------------------------------------
    # resolution (reads: served locally, never contact the master)
    # ------------------------------------------------------------------

    async def op_resolve(self, path: str, caller_ip: str):
        """Resolve an absolute path on behalf of ``caller_ip``."""
        self.resolves_served += 1
        # Model the replica's CPU: resolves are cheap ("the resolve
        # operation is quite fast", section 8.2) but not free, so one
        # replica has finite lookup capacity and capacity grows with
        # replicas (section 4.6) -- experiment E4b measures exactly this.
        await self._cpu.acquire()
        try:
            await self.kernel.sleep(RESOLVE_CPU_SECONDS)
        finally:
            self._cpu.release()
        components = split_name(path)
        node = self.store.root
        prefix: List[str] = []
        i = 0
        while True:
            if node.kind == "leaf":
                ref = node.ref
                if i >= len(components):
                    return ref
                # A context implemented by another name service (section
                # 4.3, third class): hand the rest of the lookup off.
                if lookup_interface(ref.type_id).is_a("NamingContext"):
                    rest = join_name(components[i:])
                    return await self.runtime.invoke(
                        ref, "resolveFor", (rest, caller_ip),
                        timeout=self.params.call_timeout)
                raise NotAContext(join_name(prefix))
            if i >= len(components):
                if node.kind == "replicated":
                    # Resolving the replicated context itself: the
                    # selector chooses which member to return (Figure 6).
                    chosen = await self._select(node, prefix, caller_ip)
                    node = node.bindings[chosen]
                    prefix.append(chosen)
                    continue
                return self.context_ref(join_name(prefix), node.kind)
            comp = components[i]
            if node.kind == "replicated" and comp not in node.bindings:
                if comp == SELECTOR_NAME:
                    raise NameNotFound(f"{join_name(prefix)}/selector")
                # Figure 7: the selector picks the member context in which
                # to complete the lookup; the component is not consumed.
                chosen = await self._select(node, prefix, caller_ip)
                node = node.bindings[chosen]
                prefix.append(chosen)
                continue
            node = self.store.child(node, comp)
            prefix.append(comp)
            i += 1

    async def op_list(self, path: str, caller_ip: str):
        """List bindings; a replicated context lists its *selected* member."""
        walked = await self._walk_for_list(path, caller_ip)
        if walked[0] == "remote":
            _tag, ref, rest = walked
            return await self.runtime.invoke(ref, "list", (rest,),
                                             timeout=self.params.call_timeout)
        _tag, node, prefix = walked
        if node.kind == "replicated":
            chosen = await self._select(node, prefix, caller_ip)
            child = node.bindings[chosen]
            return [(chosen, child.kind, child.ref)]
        if node.kind == "leaf":
            # A remotely implemented context bound as a leaf: delegate.
            if lookup_interface(node.ref.type_id).is_a("NamingContext"):
                return await self.runtime.invoke(
                    node.ref, "list", ("",), timeout=self.params.call_timeout)
            raise NotAContext(path)
        return [(name, child.kind, child.ref)
                for name, child in sorted(node.bindings.items())]

    async def op_list_repl(self, path: str, caller_ip: str):
        """``listRepl``: binding information about *all* members."""
        walked = await self._walk_for_list(path, caller_ip)
        if walked[0] == "remote":
            _tag, ref, rest = walked
            return await self.runtime.invoke(ref, "listRepl", (rest,),
                                             timeout=self.params.call_timeout)
        _tag, node, _prefix = walked
        if node.kind != "replicated":
            raise NotAContext(f"{path!r} is not a replicated context")
        return [(name, child.kind, child.ref) for name, child in node.members()]

    async def _walk_for_list(self, path: str, caller_ip: str):
        """Walk to the listed node, or hand off at a remote context.

        Returns ``("local", node, prefix)`` or ``("remote", ref, rest)``.
        """
        components = split_name(path)
        node = self.store.root
        prefix: List[str] = []
        i = 0
        while i < len(components):
            comp = components[i]
            if node.kind == "leaf":
                if lookup_interface(node.ref.type_id).is_a("NamingContext"):
                    return ("remote", node.ref, join_name(components[i:]))
                raise NotAContext(join_name(prefix))
            if node.kind == "replicated" and comp not in node.bindings:
                chosen = await self._select(node, prefix, caller_ip)
                node = node.bindings[chosen]
                prefix.append(chosen)
                continue
            node = self.store.child(node, comp)
            prefix.append(comp)
            i += 1
        return ("local", node, prefix)

    async def _select(self, node, prefix: List[str], caller_ip: str) -> str:
        path = join_name(prefix)
        members = node.members()
        if not members:
            raise SelectorFailed(f"replicated context {path!r} has no members")
        bindings = []
        for name, child in members:
            if child.kind == "leaf":
                bindings.append((name, child.ref))
            else:
                bindings.append(
                    (name, self.context_ref(join_name(prefix + [name]), child.kind)))
        spec = node.selector
        if spec[0] == "builtin":
            return run_builtin(spec[1], bindings, caller_ip, path,
                               self.selector_state)
        # Custom Selector object (Figure 6): invoked remotely.
        chosen = await self.runtime.invoke(
            spec[1], "select", (bindings, caller_ip),
            timeout=self.params.call_timeout)
        if not any(chosen == name for name, _ in bindings):
            raise SelectorFailed(
                f"selector for {path!r} chose unknown member {chosen!r}")
        return chosen

    # ------------------------------------------------------------------
    # updates (writes: serialized through the master)
    # ------------------------------------------------------------------

    async def op_mutate(self, op: tuple):
        """Entry point for update operations arriving at this replica."""
        remote = self._locate_remote_for_update(op[1])
        if remote is not None:
            ref, rest = remote
            await self._delegate_update(ref, rest, op)
            return
        await self.submit_update(op)

    def _locate_remote_for_update(self, path: str) -> Optional[Tuple[ObjectRef, str]]:
        """Does this path cross into a remotely implemented context?"""
        node = self.store.root
        components = split_name(path)
        for i, comp in enumerate(components):
            if node.kind == "leaf":
                if lookup_interface(node.ref.type_id).is_a("NamingContext"):
                    return node.ref, join_name(components[i:])
                raise NotAContext(join_name(components[:i]))
            if comp not in node.bindings:
                return None  # create/bind below a local context
            node = node.bindings[comp]
        return None

    async def _delegate_update(self, ref: ObjectRef, rest: str, op: tuple):
        kind = op[0]
        timeout = self.params.call_timeout
        if kind == "bind":
            await self.runtime.invoke(ref, "bind", (rest, op[2]), timeout=timeout)
        elif kind == "unbind":
            await self.runtime.invoke(ref, "unbind", (rest,), timeout=timeout)
        elif kind == "mkcontext":
            await self.runtime.invoke(ref, "bindNewContext", (rest,), timeout=timeout)
        elif kind == "mkrepl":
            await self.runtime.invoke(ref, "bindReplContext", (rest, op[2]),
                                      timeout=timeout)
        elif kind == "setselector":
            await self.runtime.invoke(ref, "setSelector", (rest, op[2]),
                                      timeout=timeout)
        else:
            raise NamingError(f"cannot delegate op {kind!r}")

    async def submit_update(self, op: tuple) -> int:
        if self.role == "master":
            return self._master_apply(op)
        if self.master_ip is None:
            raise NoMaster("no name-service master elected yet")
        self.updates_forwarded += 1
        try:
            seq, epoch, applied_op = await self.runtime.invoke(
                self.peer_replica_ref(self.master_ip), "forwardUpdate", (op,),
                timeout=self.params.call_timeout)
        except ServiceUnavailable as err:
            self._suspect_master()
            raise NoMaster(f"master {self.master_ip} unreachable: {err}") from err
        # Apply locally right away so the caller reads its own write; the
        # master's multicast of the same seq is deduplicated.
        self._ingest(seq, epoch, applied_op)
        return seq

    def _master_apply(self, op: tuple) -> int:
        self.store.check(op)
        seq = self.store.applied_seq + 1
        self.store.apply_numbered(seq, op)
        log_seq = self.changelog.append(op, self.epoch)
        assert log_seq == seq, f"store/log desync: {seq} vs {log_seq}"
        if self.params.ack_after_sync:
            # Durability barrier: the entry is durable before the caller
            # sees an ack or a slave sees the pushed copy.
            self.process.host.disk.sync()
        self.updates_applied += 1
        self._sync_context_exports()
        self._emit("update", seq=seq, op=op[0], path=op[1])
        # The master is the decision point for this name-space mutation;
        # replica ingests are fan-out copies of the same decision and do
        # not emit.  Two masters deciding *conflicting* updates without a
        # happens-before path between them is the split-brain write the
        # hb race detector exists to flag.  The version is the op content
        # alone -- not the seq -- because two masters independently
        # applying the identical repair (e.g. both audit-unbind the same
        # dead binding across an election) converge and are not a race.
        self.runtime.hb_write(f"ns:{op[1]}", ver=repr(op))
        entry = (seq, self.epoch, op)
        for peer in self.replica_ips:
            if peer != self.ip:
                # Best-effort push; a missed peer streams the gap from
                # the change log on the next heartbeat (O(gap) ops).
                self.runtime.invoke(self.peer_replica_ref(peer),
                                    "applyUpdates", (seq - 1, [entry]),
                                    timeout=self.params.call_timeout).detach()
        ledger = self.kernel.durability_ledger
        if ledger is not None:
            ledger.ack_ns(self.ip, self.epoch, seq, op)
        return seq

    def _ingest(self, seq: int, epoch, op: tuple) -> None:
        try:
            if self.store.apply_numbered(seq, op):
                self.changelog.record(seq, epoch, op)
                self.updates_applied += 1
                self._sync_context_exports()
        except ValueError:
            self._schedule_catch_up()

    def on_apply_updates(self, from_seq: int, entries) -> None:
        """A streamed change-log batch from the master (or a deposed one)."""
        if self.role == "master":
            return  # stale push from a deposed master; elections resolve it
        if from_seq > self.store.applied_seq:
            self._schedule_catch_up()
            return
        for seq, epoch, op in entries:
            if seq <= self.store.applied_seq:
                # Overlap: a duplicate delivery is fine, but a *different*
                # reign's entry at a seq we already hold means our history
                # forked (minority-side updates) -- resync from the master.
                known = self.changelog.epoch_at(seq)
                if known is not None and known != epoch:
                    self._schedule_catch_up()
                    return
                continue
            self._ingest(seq, epoch, tuple(op))

    def _sync_context_exports(self) -> None:
        """Keep one exported context object per tree context (section 9.2)."""
        wanted = set(self.store.context_paths())
        current = set(self._context_servants)
        for path in sorted(wanted - current):
            servant = ContextServant(self, path)
            self._context_servants[path] = servant
            self.runtime.export(servant, self._kind_of(path),
                                object_id=_context_oid(path))
        for path in sorted(current - wanted):
            del self._context_servants[path]
            self.runtime.unexport(_context_oid(path))

    def _kind_of(self, path: str) -> str:
        node = self.store.get_node(path)
        return "ReplicatedContext" if node.kind == "replicated" else "NamingContext"

    # ------------------------------------------------------------------
    # catch-up: incremental log shipping, snapshot only as fallback
    # ------------------------------------------------------------------

    def _persist_snapshot(self) -> None:
        """Keep an on-disk snapshot covering everything below the log.

        Fired by change-log compaction (and snapshot adoption): boot
        restores the snapshot, then replays the retained log tail, so
        truncation never loses restart coverage.  The wrapper carries
        the change-log anchor (epoch + digest at the snapshot's seq) and
        a checksum, and lands via write-new-then-swap, so a recovery
        whose log came back corrupt can re-anchor the log at the
        snapshot's cursor -- and a torn snapshot is detected, not loaded.
        """
        wrapper = {
            "snap": self.store.snapshot(),
            "epoch": self.changelog.epoch_at(self.changelog.seq),
            "digest": self.changelog.digest,
        }
        wrapper["sum"] = _snapshot_sum(wrapper)
        atomic_disk_write(self.process.host.disk, SNAPSHOT_KEY, wrapper)

    def _load_snapshot_wrapper(self) -> Tuple[Optional[dict], bool]:
        """Read back the persisted snapshot, preferring the main copy.

        Returns ``(wrapper or None, saw_garbage)``: a checksum-failing
        copy is skipped (torn write / bit rot), and the write-swap spare
        is consulted before giving up.
        """
        saw_garbage = False
        for key in (SNAPSHOT_KEY, SNAPSHOT_KEY + ".new"):
            wrapper = self.process.host.disk.read(key)
            if wrapper is None:
                continue
            if (isinstance(wrapper, dict)
                    and isinstance(wrapper.get("snap"), dict)
                    and isinstance(wrapper.get("digest"), str)
                    and wrapper.get("sum") == _snapshot_sum(wrapper)):
                return wrapper, saw_garbage
            saw_garbage = True
        return None, saw_garbage

    def _restore_from_disk(self) -> None:
        """Online bootstrap: resume from the persisted snapshot + log.

        Both artifacts may have come back damaged (PR 8 storage fault
        model); whatever survives is reconciled into a consistent
        (store, log) pair and the rest is repaired from a peer via the
        normal catch-up -- never a crash, never silent divergence.
        """
        wrapper, snap_corrupt = self._load_snapshot_wrapper()
        log_corrupt = (self.changelog.recovered_corrupt
                       or bool(self.changelog.recovered_truncated))
        if wrapper is not None:
            snap = wrapper["snap"]
            if snap["seq"] > self.store.applied_seq:
                self.store.load_snapshot(snap)
        elif snap_corrupt and self.changelog.base_seq > 0:
            # The snapshot is garbage and the log alone cannot rebuild
            # the prefix below its compaction watermark: drop the cursor
            # to zero so the next catch-up takes a full peer snapshot.
            self.changelog.reset(0, GENESIS_EPOCH, "")
        for seq, _epoch, op in self.changelog.entries:
            try:
                self.store.apply_numbered(seq, op)
            except ValueError:
                # Tail starts above the snapshot's seq (the snapshot we
                # restored predates the log's compaction watermark).
                break
        if self.changelog.seq != self.store.applied_seq and wrapper is not None:
            # The log came back truncated/garbled out of step with the
            # snapshot: re-anchor it at the snapshot's cursor so the
            # next append numbers entries in agreement with the store.
            self.changelog.reset(wrapper["snap"]["seq"], wrapper["epoch"],
                                 wrapper["digest"])
        if snap_corrupt or log_corrupt:
            self._emit("restore_corrupt", snapshot=bool(snap_corrupt),
                       log_truncated=self.changelog.recovered_truncated,
                       seq=self.store.applied_seq)
            self._schedule_catch_up()
        if self.store.applied_seq:
            self._emit("restored", seq=self.store.applied_seq)

    def _schedule_catch_up(self) -> None:
        if self._catching_up or self.master_ip in (None, self.ip):
            return
        self._catching_up = True
        self.process.create_task(self._catch_up(), name="ns-catch-up").detach()

    async def _catch_up(self) -> None:
        try:
            await self._catch_up_from(self.master_ip)
        except (ServiceUnavailable, CancelledError, DiskWedged):
            # DiskWedged: our own log cannot record right now; the next
            # heartbeat re-triggers the catch-up once the disk heals.
            pass
        finally:
            self._catching_up = False

    async def _catch_up_from(self, peer_ip: str,
                             timeout: Optional[float] = None) -> None:
        """Pull the updates after our change-log cursor from ``peer_ip``.

        The request carries ``(from_seq, from_epoch)``.  The peer streams
        ops when it shares our history at that cursor -- O(gap) work --
        and answers with a full snapshot only when the cursor epoch
        mismatches (a forked minority history: the PR 3 stale-read case,
        now *detected* instead of assumed on every adoption) or when its
        log has been truncated past our cursor.
        """
        from_seq = self.store.applied_seq
        from_epoch = self.changelog.epoch_at(from_seq)
        reply = await self.runtime.invoke(
            self.peer_replica_ref(peer_ip), "fetchUpdates",
            (from_seq, from_epoch),
            timeout=timeout or self.params.call_timeout)
        if reply[0] == "ops":
            applied = 0
            for seq, epoch, op in reply[1]:
                try:
                    if self.store.apply_numbered(seq, tuple(op)):
                        self.changelog.record(seq, epoch, tuple(op))
                        applied += 1
                except ValueError:  # pragma: no cover - concurrent adoption
                    break
            if applied:
                self.updates_applied += applied
                self._sync_context_exports()
            self.catch_ups += 1
            self.catch_up_ops += applied
            self._emit("catch_up", from_seq=from_seq,
                       to_seq=self.store.applied_seq, ops=applied)
        else:
            _tag, snap, epoch, digest = reply
            self.store.load_snapshot(snap)
            self.changelog.reset(snap["seq"], epoch, digest)
            self._persist_snapshot()
            self._sync_context_exports()
            self.snapshot_fetches += 1
            self._emit("state_fetched", seq=snap["seq"])

    def on_fetch_updates(self, from_seq: int, from_epoch):
        """Serve a peer's catch-up request from the change log."""
        entries = self.changelog.entries_from(from_seq, from_epoch)
        if entries is not None:
            return ("ops", entries)
        return ("snapshot", self.store.snapshot(),
                self.changelog.epoch_at(self.changelog.seq),
                self.changelog.digest)

    # ------------------------------------------------------------------
    # election (Echo-style majority voting)
    # ------------------------------------------------------------------

    def _new_timeout(self) -> float:
        low, high = self.params.ns_election_timeout
        return self.rng.uniform(low, high)

    def _suspect_master(self) -> None:
        """A forward failed: treat it as a missed heartbeat, fast-path."""
        self.last_heartbeat = min(self.last_heartbeat,
                                  self.kernel.now - self._election_timeout)

    async def _watchdog(self) -> None:
        """Slave-side failure detector driving elections."""
        while True:
            await self.kernel.sleep(1.0)
            if self.role == "master":
                continue
            if self.kernel.now - self.last_heartbeat >= self._election_timeout:
                await self._run_election()

    async def _run_election(self) -> None:
        self.role = "candidate"
        self.epoch += 1
        epoch = self.epoch
        self.voted_for = self.ip
        self._emit("election_started", epoch=epoch)
        my_seq = self.store.applied_seq
        peers = [p for p in self.replica_ips if p != self.ip]
        calls = [self.runtime.invoke(self.peer_replica_ref(p), "requestVote",
                                     (epoch, self.ip, my_seq), timeout=2.0)
                 for p in peers]
        results = await gather(self.kernel, calls, return_exceptions=True)
        if self.epoch != epoch or self.role != "candidate":
            return  # superseded while waiting
        votes = 1
        best_seq, best_peer = my_seq, None
        for peer, res in zip(peers, results):
            if isinstance(res, BaseException):
                continue
            granted, peer_seq = res
            if granted:
                votes += 1
                if peer_seq > best_seq:
                    best_seq, best_peer = peer_seq, peer
        if votes >= self.quorum:
            # Adopt the most up-to-date granter's state before serving:
            # an incremental pull from its change log (snapshot only if
            # our histories forked or its log was truncated).
            if best_peer is not None:
                try:
                    await self._catch_up_from(best_peer, timeout=2.0)
                except (ServiceUnavailable, DiskWedged):
                    pass
            if self.epoch != epoch or self.role != "candidate":
                return
            self.role = "master"
            self.master_ip = self.ip
            self._emit("master_elected", epoch=epoch, votes=votes)
            self.process.create_task(self._master_heartbeats(epoch),
                                     name="ns-heartbeats").detach()
            self.process.create_task(self._audit_loop(epoch), name="ns-audit").detach()
        else:
            self.role = "slave"
            self.last_heartbeat = self.kernel.now
            self._election_timeout = self._new_timeout()

    async def _master_heartbeats(self, epoch: int) -> None:
        """Beacon to slaves, and verify we still command a majority.

        "Availability is improved because the name service is available as
        long as a majority of replicas are alive" -- the flip side is that
        a master that can no longer reach a majority (partition, mass
        failure) must stop serving updates, or a second master elected on
        the other side would fork the name space.
        """
        missed_rounds = 0
        while self.role == "master" and self.epoch == epoch:
            peers = [p for p in self.replica_ips if p != self.ip]
            probes = [self.runtime.invoke(self.peer_replica_ref(p), "heartbeat",
                                          (epoch, self.ip, self.store.applied_seq),
                                          timeout=self.params.ns_heartbeat)
                      for p in peers]
            reachable = 1  # self
            results = await gather(self.kernel, probes, return_exceptions=True)
            if self.role != "master" or self.epoch != epoch:
                return
            for res in results:
                if not isinstance(res, BaseException):
                    reachable += 1
            if reachable >= self.quorum:
                missed_rounds = 0
            else:
                missed_rounds += 1
                if missed_rounds >= 3:
                    self._emit("lost_quorum", epoch=epoch, reachable=reachable)
                    self.role = "slave"
                    self.master_ip = None
                    self.last_heartbeat = self.kernel.now
                    self._election_timeout = self._new_timeout()
                    return
            await self.kernel.sleep(self.params.ns_heartbeat)

    # -- handlers for replica-to-replica operations ----------------------

    def on_request_vote(self, epoch: int, candidate_ip: str,
                        candidate_seq: int) -> Tuple[bool, int]:
        if epoch > self.epoch:
            self.epoch = epoch
            self.voted_for = None
            if self.role == "master":
                self._step_down(candidate_ip=None)
        granted = (epoch == self.epoch
                   and self.voted_for in (None, candidate_ip)
                   and candidate_seq >= 0)
        if granted:
            self.voted_for = candidate_ip
            self.last_heartbeat = self.kernel.now  # don't start a rival bid
        return granted, self.store.applied_seq

    def on_heartbeat(self, epoch: int, master_ip: str, seq: int) -> None:
        if epoch < self.epoch:
            return
        if epoch > self.epoch or self.master_ip != master_ip:
            self.epoch = epoch
            self.voted_for = None
            if self.role == "master" and master_ip != self.ip:
                self._step_down(candidate_ip=master_ip)
            self.master_ip = master_ip
            if master_ip != self.ip:
                self.role = "slave"
            self._emit("adopted_master", epoch=epoch, master=master_ip)
            # A new reign: our history may have forked from the new
            # master's (minority-side updates during a partition).  The
            # catch-up request carries our cursor *epoch*, so the master
            # detects a fork and answers with a snapshot; a shared
            # history costs O(gap) ops -- not the old unconditional
            # full-state fetch.
            if master_ip != self.ip:
                self._schedule_catch_up()
        self.last_heartbeat = self.kernel.now
        self.last_master_seq = seq
        if seq > self.store.applied_seq:
            self._schedule_catch_up()

    def _step_down(self, candidate_ip: Optional[str]) -> None:
        self.role = "slave"
        self.master_ip = candidate_ip
        self.last_heartbeat = self.kernel.now
        self._election_timeout = self._new_timeout()
        self._emit("stepped_down", epoch=self.epoch)

    def on_forward_update(self, op: tuple) -> Tuple[int, Any, tuple]:
        if self.role != "master":
            raise NoMaster(f"{self.ip} is not the master")
        seq = self._master_apply(op)
        return seq, self.epoch, op

    def status(self) -> dict:
        return {"ip": self.ip, "role": self.role, "epoch": self.epoch,
                "master": self.master_ip, "seq": self.store.applied_seq,
                "log_base": self.changelog.base_seq,
                "catch_ups": self.catch_ups,
                "snapshot_fetches": self.snapshot_fetches}

    def replication_gauges(self) -> dict:
        """Lag gauges scraped into the SSC load-report batch (PR 7)."""
        if self.process.host.disk.wedged:
            # Refuse to vouch for a cursor the wedged storage cannot
            # back; the SSC scrape survives the raise and flags the
            # gauges stale.
            raise DiskWedged(f"ns gauges unavailable: disk wedged "
                             f"on {self.ip}")
        return {"repl_seq": self.store.applied_seq,
                "repl_lag": self.changelog.lag_behind(self.last_master_seq)}

    # ------------------------------------------------------------------
    # auditing (section 4.7): remove dead objects from the name space
    # ------------------------------------------------------------------

    async def _audit_loop(self, epoch: int) -> None:
        while self.role == "master" and self.epoch == epoch:
            await self.kernel.sleep(self.params.ns_audit_poll)
            if self.role != "master" or self.epoch != epoch:
                return
            await self._audit_once()

    async def _audit_once(self) -> None:
        bindings = self.leaf_bindings()
        if not bindings:
            return
        refs = [ref for _path, ref in bindings]
        statuses = await self._check_status(refs)
        if statuses is None:
            return
        for (path, ref), status in zip(bindings, statuses):
            if status != "dead":
                continue
            # Re-check: the service may have re-bound a fresh object
            # between the poll and now.
            try:
                node = self.store.get_node(path)
            except NamingError:
                continue
            if node.kind == "leaf" and node.ref == ref:
                try:
                    self._master_apply(("unbind", path))
                    self.audit_removals += 1
                    self._emit("audit_removed", path=path)
                except (NamingError, DiskWedged):
                    # DiskWedged: the audit loop must survive a wedged
                    # local log; the removal retries next cycle.
                    pass

    async def _check_status(self, refs: List[ObjectRef]) -> Optional[List[str]]:
        """Ask a RAS replica about ``refs``: local first, peers as fallback.

        The local RAS is the cheapest oracle, but the audit must not
        have a single-point dependency on it: a gray (slow-but-alive)
        master host stretches the loopback round trip past
        ``ras_call_timeout``, and without a fallback every audit cycle
        times out and dead bindings linger cluster-wide.  Peer RAS
        replicas track remote liveness through their own peer polls, so
        any of them can answer.
        """
        candidates = [self.ip] + [ip for ip in self.replica_ips
                                  if ip != self.ip]
        for ip in candidates:
            try:
                ras_ref = await self.op_resolve(f"svc/ras/{ip}", self.ip)
            except (NamingError, ServiceUnavailable):
                continue  # RAS not registered yet (booting, or host down)
            try:
                return await self.runtime.invoke(
                    ras_ref, "checkStatus", (refs,),
                    timeout=self.params.ras_call_timeout)
            except ServiceUnavailable:
                continue
        return None


class _ReplicaServant:
    """Wire adapter for the ``NameReplica`` internal interface."""

    def __init__(self, replica: NameReplicaProcess):
        self._replica = replica

    async def forwardUpdate(self, ctx: CallContext, op: tuple):
        return self._replica.on_forward_update(tuple(op))

    async def applyUpdates(self, ctx: CallContext, from_seq: int, entries):
        self._replica.on_apply_updates(from_seq, entries)

    async def requestVote(self, ctx: CallContext, epoch: int,
                          candidate_ip: str, candidate_seq: int):
        return self._replica.on_request_vote(epoch, candidate_ip, candidate_seq)

    async def heartbeat(self, ctx: CallContext, epoch: int, master_ip: str,
                        seq: int):
        self._replica.on_heartbeat(epoch, master_ip, seq)

    async def fetchUpdates(self, ctx: CallContext, from_seq: int, from_epoch):
        return self._replica.on_fetch_updates(from_seq, from_epoch)

    async def status(self, ctx: CallContext):
        return self._replica.status()


def start_name_replica(host: Host, network: Network, params: Params,
                       replica_ips: List[str],
                       rng: Optional[SeededRandom] = None,
                       trace: Optional[TraceLog] = None,
                       parent: Optional[Process] = None) -> NameReplicaProcess:
    """Spawn the ``ns`` process on ``host`` and return its replica object."""
    process = host.spawn("ns", parent=parent)
    runtime = OCSRuntime(process, network, port=params.ns_port)
    return NameReplicaProcess(process, runtime, params, replica_ips,
                              rng=rng, trace=trace)
