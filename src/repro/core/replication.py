"""Replication styles built on the name service (paper section 5).

Active replicas (section 5.1) need no machinery beyond
``Service.bind_as_replica``: every replica binds into a replicated
context and selectors route clients.

Primary/backup (section 5.2) is this module: "When the replicas begin
execution, they try to bind themselves in the global name space under
the service name.  The first one to succeed becomes the primary.  The
others periodically retry the binding request, which will fail so long
as the primary is alive.  If the primary fails, its binding will be
removed from the name service [by the audit].  Subsequently one of the
backup replicas' bind requests will succeed."
"""

from __future__ import annotations

from typing import Awaitable, Callable, Optional

from repro.core.naming.errors import AlreadyBound, NamingError
from repro.ocs.exceptions import ServiceUnavailable
from repro.ocs.objref import ObjectRef

PromoteHook = Callable[[], Optional[Awaitable[None]]]


class PrimaryBackupBinder:
    """Runs the bind-retry race for one service replica.

    Create it in a service's ``start``, then ``service.spawn_task(
    binder.run())``.  ``on_promote`` fires when this replica wins the
    binding (it should recover state -- from the database or from peers --
    before serving, section 9.4); ``on_demote`` fires if the replica later
    discovers its binding gone while still alive (operator moved the
    service, or a spurious audit removal).
    """

    def __init__(self, service, name: str, ref: ObjectRef,
                 on_promote: Optional[PromoteHook] = None,
                 on_demote: Optional[PromoteHook] = None):
        self.service = service
        self.name = name
        self.ref = ref
        self.on_promote = on_promote
        self.on_demote = on_demote
        self.role = "backup"
        self.promotions = 0
        self.bind_attempts = 0

    async def run(self) -> None:
        params = self.service.params
        kernel = self.service.kernel
        # First attempt happens immediately: at a clean cold start the
        # first replica to start becomes primary without waiting a cycle.
        while True:
            if self.role == "backup":
                await self._try_bind()
            else:
                await self._verify_primary()
            await kernel.sleep(params.backup_bind_retry)

    async def _try_bind(self) -> None:
        self.bind_attempts += 1
        try:
            parent = self._parent_of(self.name)
            if parent:
                await self.service.names.ensure_context(parent)
            await self.service.names.bind(self.name, self.ref)
        except AlreadyBound:
            return  # the primary is alive; stay backup
        except (NamingError, ServiceUnavailable):
            return  # name service unavailable; retry next interval
        self.role = "primary"
        self.promotions += 1
        self.service.emit("promoted", name=self.name)
        if self.on_promote is not None:
            result = self.on_promote()
            if result is not None:
                await result

    async def _verify_primary(self) -> None:
        """Confirm our binding still stands; demote if it was removed."""
        try:
            current = await self.service.names.resolve(self.name)
        except (NamingError, ServiceUnavailable):
            return  # can't tell right now; check again next interval
        if current == self.ref:
            return
        self.role = "backup"
        self.service.emit("demoted", name=self.name)
        if self.on_demote is not None:
            result = self.on_demote()
            if result is not None:
                await result

    @staticmethod
    def _parent_of(name: str) -> str:
        return name.rsplit("/", 1)[0] if "/" in name else ""
