"""Replication styles built on the name service (paper section 5).

Active replicas (section 5.1) need no machinery beyond
``Service.bind_as_replica``: every replica binds into a replicated
context and selectors route clients.

Primary/backup (section 5.2) is this module: "When the replicas begin
execution, they try to bind themselves in the global name space under
the service name.  The first one to succeed becomes the primary.  The
others periodically retry the binding request, which will fail so long
as the primary is alive.  If the primary fails, its binding will be
removed from the name service [by the audit].  Subsequently one of the
backup replicas' bind requests will succeed."

PR 7 adds the :class:`ChangeLog`: a monotonically numbered, disk-
persisted update log (devpi-style log shipping) shared by the name
service replicas and the db service.  The primary appends every update
and streams ``applyUpdates(from_seq, entries)`` batches; a behind
replica catches up incrementally from the log in O(gap) ops, falling
back to a full snapshot only when the log has been truncated past its
cursor or the histories have forked (DESIGN.md section 13).
"""

from __future__ import annotations

import hashlib
from typing import Any, Awaitable, Callable, List, Optional, Tuple

from repro.idl import register_exception
from repro.ocs.exceptions import DiskWedged as RetryableDiskWedged
from repro.ocs.exceptions import ServiceUnavailable
from repro.ocs.objref import ObjectRef

PromoteHook = Callable[[], Optional[Awaitable[None]]]


@register_exception
class NotPrimary(Exception):
    """A primary-only operation reached a backup replica.

    Shared by every primary/backup service (CSC directed operations, db
    write-through forwarding): the caller treats it as retryable and
    re-resolves the primary binding.
    """


# A servant whose storage raises the sim-level DiskWedged marshals it by
# class *name*; registering the OCS ServiceUnavailable subclass of the
# same name means the caller materialises a retryable unavailability and
# rebinds at another replica instead of surfacing a storage internals
# error (PR 8 storage fault model).
register_exception(RetryableDiskWedged)

# (seq, epoch, op): epoch identifies the reign that appended the entry --
# the NS election epoch (int) or the db primary's process incarnation
# (tuple).  Two logs sharing (seq, epoch) share the whole prefix up to
# seq, so epoch comparison at the requester's cursor detects forked
# minority histories that bare sequence numbers cannot.
LogEntry = Tuple[int, Any, tuple]

GENESIS_EPOCH = None  # epoch "before the first entry" of an empty log


def _chain_digest(digest: str, seq: int, op: tuple) -> str:
    """Fold one applied op into the running change-log digest."""
    return hashlib.sha256(
        f"{digest}|{seq}|{op!r}".encode()).hexdigest()


#: hex chars kept per entry checksum: 64 bits of integrity, enough to
#: make a torn/garbled entry's survival odds negligible while keeping
#: the persisted log compact.
_SUM_WIDTH = 16


def _entry_sum(prev: str, seq: int, epoch, op: tuple) -> str:
    """Per-entry integrity checksum, chained from the previous entry's.

    Unlike :func:`_chain_digest` (the cross-replica history oracle, which
    deliberately excludes the epoch so snapshot adopters agree), this sum
    covers everything persisted for the entry -- seq, epoch, op -- so a
    recovery scan can prove a prefix of the on-disk log intact and
    truncate the rest.
    """
    return hashlib.sha256(
        f"{prev}|{seq}|{epoch!r}|{op!r}".encode()).hexdigest()[:_SUM_WIDTH]


def atomic_disk_write(disk, key: str, value) -> None:
    """Write-new-then-swap: a crash can tear at most one of two copies.

    Write the spare (``<key>.new``), sync, write the main copy, sync,
    drop the spare.  Whatever instant a power failure hits, at least one
    durable, checksum-valid copy exists: readers prefer the main copy
    and fall back to the spare (see ``ChangeLog._load_state``).  With
    the write barrier off the syncs are counted no-ops and the dance
    degrades to a plain (still atomic) write.
    """
    spare = key + ".new"
    disk.write(spare, value)
    disk.sync()
    disk.write(key, value)
    disk.sync()
    disk.delete(spare)


class ChangeLog:
    """Monotonically numbered, disk-persisted update log.

    One instance per replica, living on the host :class:`~repro.sim.host.
    Disk` under ``disk_key`` so it survives process crashes and host
    reboots -- the basis for online replica bootstrap.  The primary
    ``append``s, replicas ``record`` streamed entries at the same
    sequence numbers, and ``entries_from`` answers a peer's incremental
    catch-up request (or refuses with ``None`` when only a snapshot can
    help).

    Compaction keeps the newest ``retain`` entries; ``(base_seq,
    base_epoch)`` describe the entry just below the retained window.
    ``on_compact`` fires after each truncation so the owner can persist
    a matching state snapshot (the NS stores its tree; db tables are
    already the materialized on-disk state).

    ``digest`` is a running sha256 chain over every applied ``(seq,
    op)``.  A replica that adopts a snapshot adopts the sender's digest
    at that seq, so at quiesce equal digests mean byte-identical update
    histories -- the cross-replica conformance oracle.

    On-disk layout (schema 2): each entry persists under its own key
    (``<disk_key>.e/<seq>`` holding ``(seq, epoch, op, chained_sum)``),
    so an append writes one small record instead of rewriting the whole
    retained window -- O(1) bytes per append where schema 1 paid
    O(retain).  The header key (``disk_key``) holds only the compaction
    watermark -- ``{schema, base_seq, base_epoch, base_digest,
    base_sum, compactions}`` -- and is (re)written only when the
    watermark moves (compaction, snapshot adoption); a missing header
    just means the log never compacted, and recovery scans entry keys
    forward from the genesis base.  ``seq`` and ``digest`` are not
    persisted at all: recovery re-derives both by walking the entry
    chain from the header's base.

    Compaction runs with hysteresis: the log grows to ``2 * retain``
    entries, then cuts back to ``retain`` in one step, so steady-state
    appends trigger one compaction per ``retain`` appends instead of
    one per append.  The compaction write order is header first (via
    :func:`atomic_disk_write`), dropped entry keys after: a crash in
    between strands orphan entry keys below the new watermark, which
    recovery sweeps and which never shadow live entries.

    Against the PR 8 storage fault model the log defends itself: every
    persisted entry carries a chained checksum (``_entry_sum``), reopen
    validates the chain and truncates (and deletes) the invalid suffix
    (``recovered_truncated``), an unreadable-garbage header falls back
    to the write-swap spare and then to an empty log
    (``recovered_corrupt``), and header rewrites go through
    :func:`atomic_disk_write`.
    """

    def __init__(self, disk, disk_key: str, retain: int = 512,
                 on_compact: Optional[Callable[[], None]] = None):
        self.disk = disk
        self.disk_key = disk_key
        self.retain = max(1, retain)
        self.on_compact = on_compact
        #: recovery report for the owner: the persisted log (and its
        #: swap spare) was unusable garbage / how many tail entries the
        #: checksum scan truncated.  Owners emit ``restore_corrupt`` and
        #: fall back to peer catch-up when either is set.
        self.recovered_corrupt = False
        self.recovered_truncated = 0
        self.entries: List[LogEntry] = []
        self._sums: List[str] = []
        self.seq = 0
        self.base_seq = 0
        self.base_epoch = GENESIS_EPOCH
        self.base_digest = ""
        self.base_sum = ""
        self.digest = ""
        self.compactions = 0
        self._recover(self._load_state())

    # -- crash recovery ------------------------------------------------

    def _entry_key(self, seq: int) -> str:
        return f"{self.disk_key}.e/{seq}"

    def _load_state(self):
        """Prefer the main header copy; fall back to the write-swap spare.

        Returns None both for "never compacted" (no header was ever
        written -- a fresh or young log) and for "header is garbage"
        (``recovered_corrupt`` set); either way recovery scans entry
        keys from the genesis base.
        """
        main = self.disk.read(self.disk_key)
        if self._state_shape_ok(main):
            return main
        if main is not None:
            self.recovered_corrupt = True
        spare = self.disk.read(self.disk_key + ".new")
        if self._state_shape_ok(spare):
            return spare
        if spare is not None:
            self.recovered_corrupt = True
        return None

    @staticmethod
    def _state_shape_ok(state) -> bool:
        if not isinstance(state, dict) or state.get("schema") != 2:
            return False
        return (all(isinstance(state.get(k), int)
                    for k in ("base_seq", "compactions"))
                and all(isinstance(state.get(k), str)
                        for k in ("base_digest", "base_sum"))
                and "base_epoch" in state)

    def _recover(self, state) -> None:
        """Adopt the longest self-consistent prefix of the on-disk log.

        Starting at the header's watermark (or the genesis base when no
        header exists), entry keys are probed forward and validated
        against the checksum chain rooted at ``base_sum``; the first
        torn/garbled/mis-numbered entry and everything after it are
        truncated and their keys deleted (they were never synced, so by
        the sync-before-ack discipline nothing acknowledged is lost).
        ``seq`` and the running digest are both re-derived from the
        surviving prefix.  Orphan entry keys below the watermark (a
        crash between a compaction's header write and its key deletes)
        are swept here too.
        """
        if state is not None:
            self.base_seq = state["base_seq"]
            self.base_epoch = state["base_epoch"]
            self.base_digest = state["base_digest"]
            self.base_sum = state["base_sum"]
            self.compactions = state["compactions"]
        seq, digest, prev_sum = self.base_seq, self.base_digest, self.base_sum
        entries: List[LogEntry] = []
        sums: List[str] = []
        read = self.disk.read
        dropped = 0
        while True:
            item = read(self._entry_key(seq + 1))
            if item is None:
                break
            ok = (isinstance(item, (list, tuple)) and len(item) == 4
                  and item[0] == seq + 1)
            if ok:
                e_seq, e_epoch, e_op, e_sum = item
                ok = (isinstance(e_op, tuple)
                      and e_sum == _entry_sum(prev_sum, e_seq, e_epoch, e_op))
            if not ok:
                # Count and delete the whole invalid suffix: entries past
                # the break can never re-anchor to the chain, and leaving
                # their keys behind would shadow future appends at the
                # same sequence numbers across a later crash.
                probe = seq + 1
                while read(self._entry_key(probe)) is not None:
                    self.disk.delete(self._entry_key(probe))
                    dropped += 1
                    probe += 1
                break
            entries.append((e_seq, e_epoch, e_op))
            sums.append(e_sum)
            seq = e_seq
            digest = _chain_digest(digest, e_seq, e_op)
            prev_sum = e_sum
        self.entries = entries
        self._sums = sums
        self.seq = seq
        self.digest = digest
        self.recovered_truncated = dropped
        # Sweep compaction orphans below the watermark (none in a clean
        # shutdown; bounded by one cut per crashed compaction).
        probe = self.base_seq
        while probe > 0 and read(self._entry_key(probe)) is not None:
            self.disk.delete(self._entry_key(probe))
            probe -= 1

    # -- mutation ------------------------------------------------------

    def append(self, op: tuple, epoch) -> int:
        """Primary side: assign the next sequence number to ``op``."""
        seq = self.seq + 1
        self._add(seq, epoch, op)
        return seq

    def record(self, seq: int, epoch, op: tuple) -> bool:
        """Replica side: record a streamed entry at its assigned seq.

        Returns False for an already-recorded entry; raises ValueError
        on a gap (the caller schedules a catch-up instead).
        """
        if seq <= self.seq:
            return False
        if seq != self.seq + 1:
            raise ValueError(f"log gap: have {self.seq}, got {seq}")
        self._add(seq, epoch, op)
        return True

    def _add(self, seq: int, epoch, op: tuple) -> None:
        prev_sum = self._sums[-1] if self._sums else self.base_sum
        entry_sum = _entry_sum(prev_sum, seq, epoch, op)
        self.entries.append((seq, epoch, op))
        self._sums.append(entry_sum)
        self.seq = seq
        self.digest = _chain_digest(self.digest, seq, op)
        # The whole append persists as one small record; the header does
        # not change (recovery re-derives seq/digest from the chain).
        self.disk.write(self._entry_key(seq), (seq, epoch, op, entry_sum))
        # Hysteresis: let the log grow to twice the retained window, then
        # cut back to ``retain`` in one step -- one compaction (and one
        # header rewrite + snapshot hook) per ``retain`` appends, not one
        # per append at the high-water mark.
        if len(self.entries) > 2 * self.retain:
            self._compact()

    def _compact(self) -> None:
        cut = len(self.entries) - self.retain
        # The base digest/sum advance over the dropped entries so a
        # recovery scan can re-anchor the chains at the new watermark.
        for d_seq, _d_epoch, d_op in self.entries[:cut]:
            self.base_digest = _chain_digest(self.base_digest, d_seq, d_op)
        self.base_sum = self._sums[cut - 1]
        last_dropped = self.entries[cut - 1]
        old_base = self.base_seq
        del self.entries[:cut]
        del self._sums[:cut]
        self.base_seq = last_dropped[0]
        self.base_epoch = last_dropped[1]
        self.compactions += 1
        # Hook fires BEFORE the truncated log is persisted: a crash
        # inside (or right after) the owner's snapshot write leaves
        # the pre-compaction log on disk, so no state is lost -- the
        # truncation and the snapshot commit together or not at all.
        if self.on_compact is not None:
            self.on_compact()
        # Header first, dropped keys after: once the watermark is
        # durable, the dropped entries are dead weight whichever subset
        # of the deletes survives a crash (recovery sweeps the orphans).
        # The reverse order could lose acknowledged entries -- deleted
        # keys with a header that still claims the old base.
        self._persist_header()
        delete = self.disk.delete
        for s in range(old_base + 1, self.base_seq + 1):
            delete(self._entry_key(s))

    def reset(self, seq: int, epoch, digest: str) -> None:
        """Adopt a snapshot: the log restarts empty at the sender's seq."""
        old_lo, old_hi = self.base_seq + 1, self.seq
        self.entries = []
        self._sums = []
        self.seq = seq
        self.base_seq = seq
        self.base_epoch = epoch
        self.base_digest = digest
        self.base_sum = ""
        self.digest = digest
        # Same ordering discipline as _compact: the new watermark becomes
        # durable before the old history's keys go away.
        self._persist_header()
        for s in range(old_lo, old_hi + 1):
            self.disk.delete(self._entry_key(s))

    def _persist_header(self) -> None:
        state = {
            "schema": 2,
            "base_seq": self.base_seq,
            "base_epoch": self.base_epoch,
            "base_digest": self.base_digest,
            "base_sum": self.base_sum,
            "compactions": self.compactions,
        }
        # Every header write moves the watermark and thereby *shrinks*
        # the log -- exactly the writes where a torn copy could lose
        # both the old and the new state -- so all of them swap.
        atomic_disk_write(self.disk, self.disk_key, state)

    # -- queries -------------------------------------------------------

    def epoch_at(self, seq: int):
        """The epoch of the entry at ``seq``; None when unknowable.

        ``seq == base_seq`` answers from the compaction watermark; a seq
        below the retained window (or beyond the log head) is unknowable
        and the caller must treat it as "cannot serve incrementally".
        """
        if seq == self.base_seq:
            return self.base_epoch
        if self.base_seq < seq <= self.seq:
            return self.entries[seq - self.base_seq - 1][1]
        return None

    def entries_from(self, from_seq: int, from_epoch) -> Optional[List[LogEntry]]:
        """Entries after a peer's ``(from_seq, from_epoch)`` cursor.

        Returns the (possibly empty) tail when the peer shares our
        history at its cursor; ``None`` when only a snapshot can help:
        the cursor is ahead of us or carries a different epoch (forked
        history), or it has been truncated out of the retained window.
        """
        if from_seq > self.seq:
            return None
        if from_seq < self.base_seq:
            return None
        if self.epoch_at(from_seq) != from_epoch and from_seq > 0:
            return None
        return self.entries[from_seq - self.base_seq:]

    def lag_behind(self, primary_seq: int) -> int:
        return max(0, primary_seq - self.seq)


# Imported here, not at the top: repro.core.naming's package init pulls
# in replica.py, which imports ChangeLog from this module -- the import
# must sit below the classes the cycle re-enters for.
from repro.core.naming.errors import AlreadyBound, NamingError  # noqa: E402


class PrimaryBackupBinder:
    """Runs the bind-retry race for one service replica.

    Create it in a service's ``start``, then ``service.spawn_task(
    binder.run())``.  ``on_promote`` fires when this replica wins the
    binding (it should recover state -- from the database or from peers --
    before serving, section 9.4); ``on_demote`` fires if the replica later
    discovers its binding gone while still alive (operator moved the
    service, or a spurious audit removal).
    """

    def __init__(self, service, name: str, ref: ObjectRef,
                 on_promote: Optional[PromoteHook] = None,
                 on_demote: Optional[PromoteHook] = None):
        self.service = service
        self.name = name
        self.ref = ref
        self.on_promote = on_promote
        self.on_demote = on_demote
        self.role = "backup"
        self.promotions = 0
        self.bind_attempts = 0

    async def run(self) -> None:
        params = self.service.params
        kernel = self.service.kernel
        # First attempt happens immediately: at a clean cold start the
        # first replica to start becomes primary without waiting a cycle.
        while True:
            if self.role == "backup":
                await self._try_bind()
            else:
                await self._verify_primary()
            await kernel.sleep(params.backup_bind_retry)

    async def _try_bind(self) -> None:
        self.bind_attempts += 1
        try:
            parent = self._parent_of(self.name)
            if parent:
                await self.service.names.ensure_context(parent)
            await self.service.names.bind(self.name, self.ref)
        except AlreadyBound:
            # Usually the primary is alive -- stay backup.  But after the
            # SSC restarts a killed primary on this host, the name still
            # holds the *previous incarnation's* ref: a dead endpoint
            # nobody can call, which would otherwise park every replica
            # in AlreadyBound until the RAS audit removes it (up to an
            # audit cycle of write unavailability).  Our own host's stale
            # binding is unambiguously ours -- same disk, same log --
            # so reclaim it now (section 9.5: "the normal recovery
            # mechanisms make the stop and restart invisible").
            if not await self._reclaim_stale_binding():
                return
        except (NamingError, ServiceUnavailable):
            return  # name service unavailable; retry next interval
        await self._promote()

    async def _reclaim_stale_binding(self) -> bool:
        """Replace this host's previous incarnation's binding with ours."""
        try:
            current = await self.service.names.resolve(self.name)
            if current == self.ref:
                return True  # our bind landed despite the error reply
            if current.ip != self.service.host.ip:
                return False  # another host's primary; not ours to take
            await self.service.names.unbind(self.name)
            await self.service.names.bind(self.name, self.ref)
        except (AlreadyBound, NamingError, ServiceUnavailable):
            return False  # lost the race (or NS hiccup); retry next cycle
        return True

    async def _promote(self) -> None:
        self.role = "primary"
        self.promotions += 1
        self.service.emit("promoted", name=self.name)
        if self.on_promote is not None:
            result = self.on_promote()
            if result is not None:
                await result

    async def _verify_primary(self) -> None:
        """Confirm our binding still stands; demote if it was removed."""
        try:
            current = await self.service.names.resolve(self.name)
        except (NamingError, ServiceUnavailable):
            return  # can't tell right now; check again next interval
        if current == self.ref:
            return
        self.role = "backup"
        self.service.emit("demoted", name=self.name)
        if self.on_demote is not None:
            result = self.on_demote()
            if result is not None:
                await result

    @staticmethod
    def _parent_of(name: str) -> str:
        return name.rsplit("/", 1)[0] if "/" in name else ""
