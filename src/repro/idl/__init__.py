"""CORBA-IDL-style interface definitions (paper section 3.2).

The deployed system specified every client/server interface in CORBA IDL
and generated C++ stubs.  The Python equivalent here keeps the same
developer workflow (section 9.1): declare an interface, implement a
servant against it, export the object, and call through a generated stub
-- with the same runtime type identification that object references carry
(``type_id``) and the same subtype relation that lets a
``FileSystemContext`` be used wherever a ``NamingContext`` is expected.
"""

from repro.idl.errors import IDLError, NoSuchMethod, SignatureError, UnknownInterface
from repro.idl.interface import (
    InterfaceDef,
    MethodDef,
    interface_registry,
    lookup_interface,
    register_interface,
)
from repro.idl.types import estimated_size, register_exception, resolve_exception

__all__ = [
    "IDLError",
    "InterfaceDef",
    "MethodDef",
    "NoSuchMethod",
    "SignatureError",
    "UnknownInterface",
    "estimated_size",
    "interface_registry",
    "lookup_interface",
    "register_exception",
    "register_interface",
    "resolve_exception",
]
