"""Marshaling cost model and the wire-exception registry.

The simulation never literally serializes Python objects; it charges the
network for the bytes a CORBA marshaler would have produced.
:func:`estimated_size` is that cost model.

Remote exceptions: a servant raising an application exception must
surface as the *same* exception type at the client (CORBA user
exceptions).  Exception classes register here by name; the OCS reply path
looks them up to re-raise the proper type, falling back to a generic
``RemoteException`` for unregistered ones.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Type

# Marshaled sizes, in bytes, approximating CDR encoding.
_SCALAR_SIZE = 8
_REF_SIZE = 64          # ip + port + timestamp + type id + object id
_STRING_OVERHEAD = 4
_CONTAINER_OVERHEAD = 4


def estimated_size(value: Any) -> int:
    """Bytes this value would occupy on the wire, CDR-style."""
    if value is None:
        return 1
    if isinstance(value, bool):
        return 1
    if isinstance(value, (int, float)):
        return _SCALAR_SIZE
    if isinstance(value, str):
        return _STRING_OVERHEAD + len(value.encode("utf-8"))
    if isinstance(value, (bytes, bytearray)):
        return _CONTAINER_OVERHEAD + len(value)
    if isinstance(value, (list, tuple, set)):
        return _CONTAINER_OVERHEAD + sum(estimated_size(v) for v in value)
    if isinstance(value, dict):
        return _CONTAINER_OVERHEAD + sum(
            estimated_size(k) + estimated_size(v) for k, v in value.items())
    # Object references and small structs: use their own hint if provided.
    hint = getattr(value, "wire_size", None)
    if hint is not None:
        return int(hint)
    return _REF_SIZE


_exception_registry: Dict[str, Type[BaseException]] = {}


def register_exception(cls: Type[BaseException]) -> Type[BaseException]:
    """Class decorator: make an exception type re-raisable across OCS.

    The wire form is ``(registered name, str(exception))``; the client
    side reconstructs the registered class with the message.
    """
    _exception_registry[cls.__name__] = cls
    return cls


def resolve_exception(name: str) -> Optional[Type[BaseException]]:
    return _exception_registry.get(name)
