"""IDL-level errors: bad declarations, unknown methods, bad signatures."""


class IDLError(Exception):
    """Base class for interface-definition errors."""


class UnknownInterface(IDLError):
    """A type id was used that no interface definition registered."""


class NoSuchMethod(IDLError):
    """A call named an operation the interface does not define."""


class SignatureError(IDLError):
    """A call's argument count does not match the operation's parameters."""


class DuplicateInterface(IDLError):
    """Two interface definitions registered the same type id."""
