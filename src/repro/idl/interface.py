"""Interface definitions: the Python stand-in for IDL files.

An :class:`InterfaceDef` declares a named object type with typed
operations and an optional base interface (single inheritance, like IDL).
Definitions register globally by type id so an :class:`~repro.ocs.objref.ObjectRef`
arriving over the wire can be turned back into a typed stub -- the
"object type identifier, used to determine the object's type at runtime"
of paper section 3.2.1.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Optional, Tuple

from repro.idl.errors import (
    DuplicateInterface,
    NoSuchMethod,
    SignatureError,
    UnknownInterface,
)


@dataclass(frozen=True)
class MethodDef:
    """One operation in an interface.

    ``params`` are parameter names (checked by count at call time);
    ``oneway`` operations expect no reply (used for notifications);
    ``idempotent`` operations are safe to re-execute on a retry, so the
    server-side reply cache lets them bypass at-most-once dedup;
    ``doc`` mirrors the comment block an IDL file would carry.
    """

    name: str
    params: Tuple[str, ...] = ()
    oneway: bool = False
    doc: str = ""
    idempotent: bool = False

    def check_args(self, args: tuple) -> None:
        if len(args) != len(self.params):
            raise SignatureError(
                f"{self.name}() takes {len(self.params)} argument(s) "
                f"({', '.join(self.params)}), got {len(args)}")


@dataclass
class InterfaceDef:
    """A named object type: the unit the IDL compiler consumed."""

    name: str
    methods: Dict[str, MethodDef] = field(default_factory=dict)
    base: Optional["InterfaceDef"] = None
    doc: str = ""

    def method(self, name: str) -> MethodDef:
        """Look up an operation, searching base interfaces."""
        iface: Optional[InterfaceDef] = self
        while iface is not None:
            if name in iface.methods:
                return iface.methods[name]
            iface = iface.base
        raise NoSuchMethod(f"interface {self.name} has no operation {name!r}")

    def has_method(self, name: str) -> bool:
        try:
            self.method(name)
            return True
        except NoSuchMethod:
            return False

    def all_methods(self) -> Dict[str, MethodDef]:
        """Operations including inherited ones (derived-most wins)."""
        chain = []
        iface: Optional[InterfaceDef] = self
        while iface is not None:
            chain.append(iface)
            iface = iface.base
        merged: Dict[str, MethodDef] = {}
        for iface in reversed(chain):
            merged.update(iface.methods)
        return merged

    def is_a(self, type_name: str) -> bool:
        """Subtype check: does this interface derive from ``type_name``?"""
        iface: Optional[InterfaceDef] = self
        while iface is not None:
            if iface.name == type_name:
                return True
            iface = iface.base
        return False


interface_registry: Dict[str, InterfaceDef] = {}


def register_interface(name: str, methods: Dict[str, Tuple],
                       base: Optional[str] = None, doc: str = "",
                       idempotent: Tuple[str, ...] = ()) -> InterfaceDef:
    """Declare and register an interface.

    ``methods`` maps operation name to a tuple of parameter names (or to a
    :class:`MethodDef` for oneway/documented operations).  ``idempotent``
    names the operations that are safe to execute more than once under a
    retried request id (reads, status probes, absolute-value writes); all
    others get at-most-once dedup from the server's reply cache.
    Re-registering the same name with identical content is idempotent so
    test modules can import service modules repeatedly.
    """
    base_def = lookup_interface(base) if base is not None else None
    unknown = [m for m in idempotent if m not in methods]
    if unknown:
        raise SignatureError(
            f"interface {name}: idempotent declares unknown operation(s) "
            f"{unknown}")
    method_defs: Dict[str, MethodDef] = {}
    for mname, spec in methods.items():
        if isinstance(spec, MethodDef):
            mdef = spec
            if mname in idempotent and not mdef.idempotent:
                mdef = replace(mdef, idempotent=True)
            method_defs[mname] = mdef
        else:
            method_defs[mname] = MethodDef(name=mname, params=tuple(spec),
                                           idempotent=mname in idempotent)
    iface = InterfaceDef(name=name, methods=method_defs, base=base_def, doc=doc)
    existing = interface_registry.get(name)
    if existing is not None:
        if (existing.methods == iface.methods
                and (existing.base.name if existing.base else None)
                == (base_def.name if base_def else None)):
            return existing
        raise DuplicateInterface(f"conflicting redefinition of interface {name}")
    interface_registry[name] = iface
    return iface


def lookup_interface(name: str) -> InterfaceDef:
    if name not in interface_registry:
        raise UnknownInterface(f"no interface registered as {name!r}")
    return interface_registry[name]
