"""Database service: "access to persistent data via exported IDL interfaces"."""

from repro.db.service import DatabaseService, DatabaseClient

__all__ = ["DatabaseClient", "DatabaseService"]
