"""The database service (paper Figure 2: "Database").

Stores tables on the server's disk, so data survives process crashes and
host reboots.  One replica runs per configured server; the primary (by
bind race on ``svc/db``) serializes writes through a monotonically
numbered, disk-persisted :class:`~repro.core.replication.ChangeLog` and
streams ``applyUpdates(from_seq, entries)`` batches to the other
replicas (PR 7, devpi-style log shipping).  A behind replica -- missed
push, restart, or post-failover -- pulls the missing tail from the
primary's log in O(gap) ops, falling back to a full snapshot only when
the log was truncated past its cursor or the histories forked.  This is
the "slow-changing state read from the database" that most services use
to recover after a failure (section 9.4) -- e.g. the CSC's service
placement (section 6.2).

Reads can go to any replica through ``svc/db-all/<server-ip>``; the
common path resolves ``svc/db`` (the primary).  A *write* arriving at a
non-primary replica is write-through proxied: forwarded to the primary
and acked only once the change has streamed back into the local log, so
the writer immediately reads its own write from this replica.
"""

from __future__ import annotations

from typing import Any, Dict, List

from repro.core.naming.errors import NamingError
from repro.core.replication import (
    ChangeLog,
    NotPrimary,
    PrimaryBackupBinder,
)
from repro.idl import register_exception, register_interface
from repro.ocs.exceptions import DeadlineExceeded, ServiceUnavailable
from repro.ocs.runtime import CallContext
from repro.services.base import Service
from repro.sim.errors import CancelledError
from repro.sim.host import DiskWedged

register_interface("Database", {
    "get": ("table", "key"),
    "put": ("table", "key", "value"),
    "delete": ("table", "key"),
    "scan": ("table",),
    "tables": (),
    # internal: primary -> replica change-log stream.  Each entry is
    # (seq, epoch, op); ``from_seq`` is the seq just before the batch so
    # a receiver detects gaps immediately.  Acknowledged (unlike the NS
    # variant) so the primary knows which pushes landed before acking
    # the writer.
    "applyUpdates": ("from_seq", "entries"),
    # internal: incremental catch-up from the primary's change log.
    "fetchUpdates": ("from_seq", "from_epoch"),
    # write-through proxying: a replica forwards a write to the primary.
    "forwardWrite": ("table", "key", "value", "deleted"),
    # applyUpdates/fetchUpdates carry their own seq cursors (a replayed
    # batch is detected and ignored by the receiver), so the replication
    # stream does not burn reply-cache slots.  put/delete/forwardWrite
    # are the durable effects the cache guards.
}, doc="Persistent tables (Figure 2)",
   idempotent=("get", "scan", "tables", "applyUpdates", "fetchUpdates"))


@register_exception
class NoSuchKey(Exception):
    """get() on a key that is not in the table."""


_DISK_PREFIX = "db/"
# The change log lives outside the table prefix so tables() stays clean.
_LOG_KEY = "dbrepl/changelog"


def seed_database(disk, table: str, rows: Dict[str, Any]) -> None:
    """Pre-load a table onto a server disk (cluster construction time)."""
    existing = disk.read(_DISK_PREFIX + table, {})
    existing.update(rows)
    disk.write(_DISK_PREFIX + table, existing)


class DatabaseService(Service):
    service_name = "db"
    ADMISSION_CONTROLLED = True

    async def start(self) -> None:
        # The on-disk log survives crashes/reboots: a restarted replica
        # resumes from its old cursor and catches up incrementally while
        # the rest of the cluster serves traffic (online bootstrap).
        self.log = ChangeLog(self.host.disk, _LOG_KEY,
                             retain=self.params.changelog_retain)
        self.last_seen_primary_seq = self.log.seq
        self.replication_skipped = 0
        self.catch_ups = 0
        self.catch_up_ops = 0
        self.snapshot_fetches = 0
        self._catching_up = False
        self._force_snapshot = False
        self._corrupt_tables: set = set()
        if self.log.recovered_corrupt or self.log.recovered_truncated:
            # The on-disk log came back torn or garbled; the checksum
            # scan kept the valid prefix and the catch-up scheduled
            # below pulls the rest from a peer instead of crashing.
            self.emit("restore_corrupt", what="changelog",
                      truncated=self.log.recovered_truncated,
                      seq=self.log.seq)
        self.ref = self.runtime.export(_DatabaseServant(self), "Database")
        await self.register_objects([self.ref])
        await self.bind_as_replica("db-all", self.host.ip, self.ref,
                                   selector="sameserver")
        self.binder = PrimaryBackupBinder(self, "svc/db", self.ref,
                                          on_demote=self._on_demote)
        self.spawn_task(self.binder.run(), name="db-binder").detach()
        self.spawn_task(self._replication_poll(),
                        name="db-repl-poll").detach()
        # Pull whatever we missed while down before the first read hits.
        self._schedule_catch_up()

    @property
    def is_primary(self) -> bool:
        return self.binder.role == "primary"

    @property
    def epoch(self) -> tuple:
        """This primary reign's identity: the process incarnation.

        Entries appended by two different primaries carry different
        epochs, so a diverged backup's cursor is detected on catch-up
        instead of silently extending a forked history.
        """
        return tuple(self.process.incarnation)

    # -- storage on the host disk --------------------------------------

    def _table(self, table: str) -> Dict[str, Any]:
        rows = self.host.disk.read(_DISK_PREFIX + table, {})
        if not isinstance(rows, dict):
            # Bit rot or a torn write landed under this table.  Serve an
            # empty table rather than garbage; a backup drops its cursor
            # and resyncs the real rows from the primary's snapshot.
            if table not in self._corrupt_tables:
                self._corrupt_tables.add(table)
                self.emit("restore_corrupt", what=f"table:{table}")
            self.host.disk.delete(_DISK_PREFIX + table)
            if not self.is_primary:
                self._force_snapshot = True
                self._schedule_catch_up()
            return {}
        return rows

    def _write_table(self, table: str, rows: Dict[str, Any]) -> None:
        self.host.disk.write(_DISK_PREFIX + table, rows)

    def get(self, table: str, key: str) -> Any:
        rows = self._table(table)
        if key not in rows:
            raise NoSuchKey(f"{table}/{key}")
        return rows[key]

    def apply_write(self, table: str, key: str, value: Any,
                    deleted: bool) -> None:
        rows = self._table(table)
        if deleted:
            rows.pop(key, None)
        else:
            rows[key] = value
        self._write_table(table, rows)

    # -- write path ------------------------------------------------------

    async def write(self, table: str, key: str, value: Any, deleted: bool,
                    deadline=None) -> int:
        if self.is_primary:
            return await self._primary_write(table, key, value, deleted,
                                             deadline=deadline)
        return await self._write_through(table, key, value, deleted,
                                         deadline=deadline)

    async def _primary_write(self, table: str, key: str, value: Any,
                             deleted: bool, deadline=None) -> int:
        self.apply_write(table, key, value, deleted)
        op = ("write", table, key, value, deleted)
        seq = self.log.append(op, self.epoch)
        self.last_seen_primary_seq = seq
        if self.params.ack_after_sync:
            # Durability barrier: the log entry and the table row hit
            # the durable image before any copy leaves this host or the
            # writer sees an ack.  A replica can therefore never hold a
            # streamed entry that a crashed-and-recovered primary lacks.
            self.host.disk.sync()
        # The primary is the decision point for this row; replica
        # applyUpdates ingests are fan-out copies of the same decision
        # and do not emit.  Two primaries deciding unordered conflicting
        # values is the split-brain write the hb race detector flags.
        self.runtime.hb_write(f"db:{table}/{key}",
                              ver="<deleted>" if deleted else repr(value))
        await self._stream_to_replicas([(seq, self.epoch, op)],
                                       deadline=deadline)
        ledger = self.kernel.durability_ledger
        if ledger is not None:
            ledger.ack_db(self.host.ip, self.epoch, seq,
                          table, key, value, deleted)
        return seq

    async def _write_through(self, table: str, key: str, value: Any,
                             deleted: bool, deadline=None) -> int:
        """Forward a write to the primary; ack once it streams back."""
        try:
            ref = await self.names.resolve("svc/db")
        except (NamingError, ServiceUnavailable) as err:
            raise ServiceUnavailable(f"no db primary bound: {err}") from err
        if ref.ip == self.host.ip:
            # The binding already points here (bind raced ahead of the
            # binder's role flip): serve as primary.
            return await self._primary_write(table, key, value, deleted,
                                             deadline=deadline)
        try:
            seq = await self.runtime.invoke(
                ref, "forwardWrite", (table, key, value, deleted),
                timeout=self.params.call_timeout, deadline=deadline)
        except NotPrimary as err:
            # Stale binding: surface as retryable so the caller rebinds.
            raise ServiceUnavailable(str(err)) from err
        await self._await_seq(seq, deadline=deadline)
        return seq

    async def _await_seq(self, seq: int, deadline=None) -> None:
        """Block until our log cursor reaches ``seq`` (the streamed-back
        copy of a forwarded write), so the writer reads its own write
        from this replica immediately after the ack."""
        give_up = self.kernel.now + self.params.call_timeout
        while self.log.seq < seq:
            if deadline is not None and self.kernel.now >= deadline:
                raise DeadlineExceeded(f"write-through ack for seq {seq}")
            if self.kernel.now >= give_up:
                raise ServiceUnavailable(
                    f"change {seq} did not stream back to {self.host.ip}")
            self._schedule_catch_up()
            await self.kernel.sleep(0.1)

    async def _stream_to_replicas(self, entries: List[tuple],
                                  deadline=None) -> None:
        """Push a change-log batch to every other db replica.

        ``list_repl`` hiccups are retried on a backoff bounded by the
        caller's deadline; only when the budget is spent is the write
        acked with zero pushes -- and then the gap is *observable*
        (``replication_skipped`` trace event + counter) instead of
        silent, and the replicas repair from the log on their next
        catch-up (ISSUE 7 satellite 1).
        """
        budget = 2 * self.params.call_timeout
        if deadline is not None:
            budget = max(0.0, min(budget, deadline - self.kernel.now))
        backoff = self.retry_backoff(max_elapsed=budget)
        while True:
            try:
                peers = await self.names.list_repl("svc/db-all")
                break
            except (NamingError, ServiceUnavailable):
                delay = backoff.next_delay()
                if delay <= 0 and backoff.exhausted:
                    self.replication_skipped += 1
                    self.emit("replication_skipped", seq=self.log.seq,
                              reason="list_repl")
                    return
                await self.kernel.sleep(delay)
        from_seq = entries[0][0] - 1
        for _member, _kind, ref in peers:
            if ref is None or ref.ip == self.host.ip:
                continue
            try:
                await self.runtime.invoke(ref, "applyUpdates",
                                          (from_seq, entries),
                                          timeout=self.params.call_timeout,
                                          deadline=deadline)
            except (ServiceUnavailable, DeadlineExceeded):
                # A dead or lagging replica pulls the gap from the log
                # when it comes back; a spent deadline means the caller
                # is gone -- remaining pushes fail fast on the same
                # deadline check.
                continue

    # -- replica ingest / catch-up ---------------------------------------

    def on_apply_updates(self, from_seq: int, entries) -> None:
        if entries:
            tail = entries[-1][0]
            if tail > self.last_seen_primary_seq:
                self.last_seen_primary_seq = tail
        if self.is_primary:
            return  # stale push from a deposed primary; the bind race rules
        if from_seq > self.log.seq:
            self._schedule_catch_up()
            return
        for seq, epoch, op in entries:
            if seq <= self.log.seq:
                # Overlap: a duplicate delivery is fine, but a different
                # reign's entry at a seq we already hold means our
                # history forked -- resync from the primary.
                known = self.log.epoch_at(seq)
                if known is not None and tuple(known) != tuple(epoch):
                    self._schedule_catch_up()
                    return
                continue
            self._apply_entry(seq, epoch, tuple(op))

    def _apply_entry(self, seq: int, epoch, op: tuple) -> None:
        self.apply_write(op[1], op[2], op[3], op[4])
        self.log.record(seq, tuple(epoch), op)

    def _schedule_catch_up(self) -> None:
        if self._catching_up:
            return
        self._catching_up = True
        self.spawn_task(self._catch_up(), name="db-catch-up").detach()

    async def _catch_up(self) -> None:
        try:
            await self._catch_up_once()
        except (NamingError, ServiceUnavailable, DeadlineExceeded,
                CancelledError, DiskWedged):
            # DiskWedged: our own storage is wedged; retry on the next
            # anti-entropy poll once the chaos layer heals the disk.
            pass
        finally:
            self._catching_up = False

    async def _catch_up_once(self) -> None:
        if self.is_primary:
            return
        ref = await self.names.resolve("svc/db")
        if ref.ip == self.host.ip:
            return
        from_seq = self.log.seq
        from_epoch = self.log.epoch_at(from_seq)
        if self._force_snapshot:
            # A corrupt table blob can only be repaired wholesale: ask
            # with a deliberately mismatched cursor so the primary's
            # entries_from refuses and serves its snapshot instead.
            from_seq, from_epoch = max(self.log.seq, 1), "corrupt-resync"
        reply = await self.runtime.invoke(
            ref, "fetchUpdates", (from_seq, from_epoch),
            timeout=self.params.call_timeout)
        if reply[0] == "ops":
            applied = 0
            for seq, epoch, op in reply[1]:
                if seq <= self.log.seq:
                    continue
                self._apply_entry(seq, epoch, tuple(op))
                applied += 1
            if applied or from_seq < self.last_seen_primary_seq:
                self.catch_ups += 1
                self.catch_up_ops += applied
                self.emit("catch_up", from_seq=from_seq, to_seq=self.log.seq,
                          ops=applied)
        else:
            _tag, snap = reply
            self._load_snapshot(snap)
            self.snapshot_fetches += 1
            self._force_snapshot = False
            self.emit("state_fetched", seq=snap["seq"])
        if self.log.seq > self.last_seen_primary_seq:
            self.last_seen_primary_seq = self.log.seq

    # -- state transfer (snapshot fallback only) --------------------------

    def serve_updates(self, from_seq: int, from_epoch):
        entries = self.log.entries_from(from_seq, from_epoch)
        if entries is not None:
            return ("ops", entries)
        return ("snapshot", self._snapshot())

    def _snapshot(self) -> dict:
        tables = {}
        for disk_key in sorted(self.host.disk.keys()):
            if disk_key.startswith(_DISK_PREFIX):
                name = disk_key[len(_DISK_PREFIX):]
                tables[name] = dict(self.host.disk.read(disk_key, {}))
        return {"seq": self.log.seq,
                "epoch": self.log.epoch_at(self.log.seq),
                "digest": self.log.digest,
                "tables": tables}

    def _load_snapshot(self, snap: dict) -> None:
        # Write-new-then-prune: lay the snapshot rows down first, drop
        # stale tables second, adopt the cursor last (reset persists via
        # the atomic swap, whose syncs also flush the rows).  A crash at
        # any point leaves either the old consistent state (buffered
        # writes lost) or a replayable superset -- never an empty prefix
        # with an advanced cursor.
        for table, rows in sorted(snap["tables"].items()):
            self._write_table(table, dict(rows))
        keep = {_DISK_PREFIX + table for table in snap["tables"]}
        for disk_key in sorted(self.host.disk.keys()):
            if disk_key.startswith(_DISK_PREFIX) and disk_key not in keep:
                self.host.disk.delete(disk_key)
        # Adopting the snapshot adopts the sender's digest at that seq,
        # so the conformance oracle (equal digests <=> identical update
        # histories) survives the fallback.
        self.log.reset(snap["seq"], snap["epoch"], snap["digest"])
        self._corrupt_tables.clear()

    async def _replication_poll(self) -> None:
        """Anti-entropy: poll the primary's log on a fixed cadence.

        A push can be lost entirely (backup partitioned or down when the
        write happened); without a poll the backup would stay behind
        until the *next* write pushed to it.  The poll bounds that lag
        at ``db_replication_poll`` regardless of write traffic -- the
        bound ``replica_lag_bounded`` holds the cluster to.
        """
        while True:
            await self.kernel.sleep(self.params.db_replication_poll)
            if not self.is_primary:
                self._schedule_catch_up()

    def _on_demote(self) -> None:
        # We may have appended writes nobody else saw while wrongly
        # primary; the epoch check on the next catch-up detects the fork
        # and resyncs.
        self._schedule_catch_up()

    # -- observability ----------------------------------------------------

    def replication_gauges(self) -> dict:
        """Lag gauges scraped into the SSC load-report batch (PR 7)."""
        if self.host.disk.wedged:
            # An in-memory cursor over a wedged disk may be ahead of
            # anything durable; refuse to vouch rather than report a
            # gauge the storage cannot back (the SSC batch survives the
            # raise and marks this service's gauges stale).
            raise DiskWedged(f"db gauges unavailable: disk wedged "
                             f"on {self.host.ip}")
        return {"repl_seq": self.log.seq,
                "repl_lag": self.log.lag_behind(self.last_seen_primary_seq)}


class _DatabaseServant:
    def __init__(self, svc: DatabaseService):
        self._svc = svc

    async def get(self, ctx: CallContext, table: str, key: str):
        return self._svc.get(table, key)

    async def put(self, ctx: CallContext, table: str, key: str, value: Any):
        return await self._svc.write(table, key, value, deleted=False,
                                     deadline=ctx.deadline)

    async def delete(self, ctx: CallContext, table: str, key: str):
        return await self._svc.write(table, key, None, deleted=True,
                                     deadline=ctx.deadline)

    async def scan(self, ctx: CallContext, table: str):
        return dict(self._svc._table(table))

    async def tables(self, ctx: CallContext):
        prefix = _DISK_PREFIX
        return sorted(k[len(prefix):] for k in self._svc.host.disk.keys()
                      if k.startswith(prefix))

    async def applyUpdates(self, ctx: CallContext, from_seq: int, entries):
        self._svc.on_apply_updates(from_seq, entries)

    async def fetchUpdates(self, ctx: CallContext, from_seq: int,
                           from_epoch):
        return self._svc.serve_updates(from_seq, from_epoch)

    async def forwardWrite(self, ctx: CallContext, table: str, key: str,
                           value: Any, deleted: bool):
        if not self._svc.is_primary:
            raise NotPrimary(f"{self._svc.host.ip} is not the db primary")
        return await self._svc._primary_write(table, key, value, deleted,
                                              deadline=ctx.deadline)


class DatabaseClient:
    """Typed client helper over the primary db binding."""

    def __init__(self, proxy):
        self._proxy = proxy  # a RebindingProxy for "svc/db"

    async def get(self, table: str, key: str) -> Any:
        return await self._proxy.call("get", table, key)

    async def get_or(self, table: str, key: str, default: Any = None) -> Any:
        try:
            return await self._proxy.call("get", table, key)
        except NoSuchKey:
            return default

    async def put(self, table: str, key: str, value: Any) -> None:
        await self._proxy.call("put", table, key, value)

    async def delete(self, table: str, key: str) -> None:
        await self._proxy.call("delete", table, key)

    async def scan(self, table: str) -> Dict[str, Any]:
        return await self._proxy.call("scan", table)
