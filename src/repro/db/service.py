"""The database service (paper Figure 2: "Database").

Stores tables on the server's disk, so data survives process crashes and
host reboots.  One replica runs per configured server; the primary (by
bind race on ``svc/db``) serves writes and pushes each write to the other
replicas' disks, so a promoted backup serves the same data.  This is the
"slow-changing state read from the database" that most services use to
recover after a failure (section 9.4) -- e.g. the CSC's service placement
(section 6.2).

Reads can go to any replica through ``svc/db-all/<server-ip>``; the
common path resolves ``svc/db`` (the primary).
"""

from __future__ import annotations

from typing import Any, Dict

from repro.core.naming.errors import NamingError
from repro.core.replication import PrimaryBackupBinder
from repro.idl import register_exception, register_interface
from repro.ocs.exceptions import DeadlineExceeded, ServiceUnavailable
from repro.ocs.runtime import CallContext
from repro.services.base import Service

register_interface("Database", {
    "get": ("table", "key"),
    "put": ("table", "key", "value"),
    "delete": ("table", "key"),
    "scan": ("table",),
    "tables": (),
    # internal: primary -> backup write propagation
    "applyWrite": ("table", "key", "value", "deleted"),
}, doc="Persistent tables (Figure 2)")


@register_exception
class NoSuchKey(Exception):
    """get() on a key that is not in the table."""


_DISK_PREFIX = "db/"


def seed_database(disk, table: str, rows: Dict[str, Any]) -> None:
    """Pre-load a table onto a server disk (cluster construction time)."""
    existing = disk.read(_DISK_PREFIX + table, {})
    existing.update(rows)
    disk.write(_DISK_PREFIX + table, existing)


class DatabaseService(Service):
    service_name = "db"
    ADMISSION_CONTROLLED = True

    async def start(self) -> None:
        self.ref = self.runtime.export(_DatabaseServant(self), "Database")
        await self.register_objects([self.ref])
        await self.bind_as_replica("db-all", self.host.ip, self.ref,
                                   selector="sameserver")
        self.binder = PrimaryBackupBinder(self, "svc/db", self.ref)
        self.spawn_task(self.binder.run(), name="db-binder").detach()

    # -- storage on the host disk --------------------------------------

    def _table(self, table: str) -> Dict[str, Any]:
        return self.host.disk.read(_DISK_PREFIX + table, {})

    def _write_table(self, table: str, rows: Dict[str, Any]) -> None:
        self.host.disk.write(_DISK_PREFIX + table, rows)

    def get(self, table: str, key: str) -> Any:
        rows = self._table(table)
        if key not in rows:
            raise NoSuchKey(f"{table}/{key}")
        return rows[key]

    def apply_write(self, table: str, key: str, value: Any,
                    deleted: bool) -> None:
        rows = self._table(table)
        if deleted:
            rows.pop(key, None)
        else:
            rows[key] = value
        self._write_table(table, rows)

    async def replicate_write(self, table: str, key: str, value: Any,
                              deleted: bool, deadline=None) -> None:
        """Push a write to every other db replica (hot-standby style)."""
        try:
            peers = await self.names.list_repl("svc/db-all")
        except (NamingError, ServiceUnavailable):
            return
        for member, _kind, ref in peers:
            if ref is None or ref.ip == self.host.ip:
                continue
            try:
                await self.runtime.invoke(ref, "applyWrite",
                                          (table, key, value, deleted),
                                          timeout=self.params.call_timeout,
                                          deadline=deadline)
            except (ServiceUnavailable, DeadlineExceeded):
                # A dead replica reloads from its disk + pushes; a spent
                # deadline means the caller is gone -- remaining pushes
                # fail fast on the same deadline check.
                continue


class _DatabaseServant:
    def __init__(self, svc: DatabaseService):
        self._svc = svc

    async def get(self, ctx: CallContext, table: str, key: str):
        return self._svc.get(table, key)

    async def put(self, ctx: CallContext, table: str, key: str, value: Any):
        self._svc.apply_write(table, key, value, deleted=False)
        # The primary is the decision point for this row; replica
        # applyWrite pushes are copies of the same decision and do not
        # emit.  Two primaries deciding unordered conflicting values is
        # the split-brain write the hb race detector flags.
        self._svc.runtime.hb_write(f"db:{table}/{key}", ver=repr(value))
        await self._svc.replicate_write(table, key, value, deleted=False,
                                        deadline=ctx.deadline)

    async def delete(self, ctx: CallContext, table: str, key: str):
        self._svc.apply_write(table, key, None, deleted=True)
        self._svc.runtime.hb_write(f"db:{table}/{key}", ver="<deleted>")
        await self._svc.replicate_write(table, key, None, deleted=True,
                                        deadline=ctx.deadline)

    async def scan(self, ctx: CallContext, table: str):
        return dict(self._svc._table(table))

    async def tables(self, ctx: CallContext):
        prefix = _DISK_PREFIX
        return sorted(k[len(prefix):] for k in self._svc.host.disk.keys()
                      if k.startswith(prefix))

    async def applyWrite(self, ctx: CallContext, table: str, key: str,
                         value: Any, deleted: bool):
        self._svc.apply_write(table, key, value, deleted)


class DatabaseClient:
    """Typed client helper over the primary db binding."""

    def __init__(self, proxy):
        self._proxy = proxy  # a RebindingProxy for "svc/db"

    async def get(self, table: str, key: str) -> Any:
        return await self._proxy.call("get", table, key)

    async def get_or(self, table: str, key: str, default: Any = None) -> Any:
        try:
            return await self._proxy.call("get", table, key)
        except NoSuchKey:
            return default

    async def put(self, table: str, key: str, value: Any) -> None:
        await self._proxy.call("put", table, key, value)

    async def delete(self, table: str, key: str) -> None:
        await self._proxy.call("delete", table, key)

    async def scan(self, table: str) -> Dict[str, Any]:
        return await self._proxy.call("scan", table)
